"""Overlapped (double-buffered) timeline replay of heterogeneous plans.

The baseline simulator (:func:`repro.runtime.simulator.simulate`) prices
transfers *lazily*: a cross-device tensor is put on the PCIe link when the
consuming task is visited, so the shared link serves transfers in
task-iteration order.  That models a synchronous executor whose device
workers issue their own copies.  A double-buffered runtime behaves
differently: a dedicated transfer stage issues every copy the moment its
producer finishes (and prefetches host-resident model inputs at request
arrival), so the link serves transfers in *ready order* and copies overlap
with compute on both devices.

This module is the shared discrete-event core for that overlapped
discipline.  It replays one plan over a sequence of request arrivals with

* one serialized timeline per device (tasks in plan-priority order, the
  executor's per-device queue order);
* one serialized link timeline that always serves the pending transfer
  with the earliest ready time (ties broken by issue order);
* eager transfer issue: task outputs are enqueued for every cross-device
  consumer at producer-finish time, external inputs at request arrival,
  and model outputs produced off-host are enqueued for host landing;
* the usual transfer cache — repeated consumers of one tensor on one
  device within a request share a single copy.

Events are committed in globally non-decreasing start-time order, which
makes the earliest-ready link discipline exact: when the link is granted
to a transfer starting at ``s``, every transfer issued later has a ready
time ``>= s`` (its producer had not started yet), so no earlier-ready
transfer can be preempted retroactively.

Consumers: :func:`repro.runtime.simulator.simulate` with ``overlap=True``
(single request) and :func:`repro.runtime.stream.simulate_stream` (many
requests) — both therefore agree bit-for-bit on a one-request stream.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.devices.machine import Machine
from repro.errors import ExecutionError
from repro.runtime.plan import HeteroPlan, TaskSpec

__all__ = ["ReplayTask", "ReplayTransfer", "ReplayResult", "replay_plan"]

#: The default machine's host device: external inputs live here and model
#: outputs land here.  Meshes override this with ``machine.host``.
HOST_DEVICE = "cpu"


def _pair(a: str, b: str) -> tuple[str, str]:
    """Canonical key of the (undirected) link between two devices."""
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class ReplayTask:
    """Committed execution of one task instance on the virtual clock."""

    request: int
    task_id: str
    device: str
    start: float
    finish: float
    kernel_durations: tuple[float, ...]


@dataclass(frozen=True)
class ReplayTransfer:
    """Committed occupancy of the link by one transfer."""

    request: int
    what: str  # e.g. "task:rnn[0]" or "external:image"
    dest_device: str
    n_bytes: float
    ready: float
    start: float
    finish: float


@dataclass
class ReplayResult:
    """Outcome of one overlapped replay.

    Attributes:
        tasks: committed task executions, in commit order.
        transfers: committed link transfers, in link-service order.
        completions: per-request completion time (all model outputs
            host-resident), indexed like the ``arrivals`` argument.
    """

    tasks: list[ReplayTask]
    transfers: list[ReplayTransfer]
    completions: list[float]


def _output_bytes(task: TaskSpec, index: int) -> float:
    try:
        out_id = task.module.output_ids[index]
    except IndexError as exc:
        raise ExecutionError(
            f"task {task.task_id!r} has no output index {index}"
        ) from exc
    return float(task.module.graph.node(out_id).ty.size_bytes)


class _Statics:
    """Plan structure shared by every request of a replay."""

    def __init__(self, plan: HeteroPlan, host: str = HOST_DEVICE):
        self.plan = plan
        self.host = host
        self.task_by_id = {t.task_id: t for t in plan.tasks}
        self.devices = sorted({t.device for t in plan.tasks} | {host})
        # (producer id, output index) -> cross-device consumer destinations,
        # in first-consumer order.  Model outputs produced off-host gain the
        # host as a destination (the landing transfer).
        self.consumers: dict[tuple[str, int], list[str]] = {}
        # External tensors consumed off-host: (input name, dest, bytes),
        # deduplicated, in plan order — these transfers are issued at
        # request arrival (the prefetch of the double buffer).
        self.external: list[tuple[str, str, float]] = []
        seen_ext: set[tuple[str, str]] = set()
        for task in plan.tasks:
            for input_id, src in task.sources.items():
                if src.kind == "external":
                    if task.device == host:
                        continue
                    if (src.ref, task.device) in seen_ext:
                        continue
                    seen_ext.add((src.ref, task.device))
                    n_bytes = float(
                        task.module.graph.node(input_id).ty.size_bytes
                    )
                    self.external.append((src.ref, task.device, n_bytes))
                else:
                    producer = self.task_by_id[src.ref]
                    if producer.device == task.device:
                        continue
                    dests = self.consumers.setdefault(
                        (src.ref, src.output_index), []
                    )
                    if task.device not in dests:
                        dests.append(task.device)
        for tid, idx in plan.outputs:
            if self.task_by_id[tid].device == host:
                continue
            dests = self.consumers.setdefault((tid, idx), [])
            if host not in dests:
                dests.append(host)


def replay_plan(
    plan: HeteroPlan,
    machine: Machine,
    arrivals: Sequence[float],
    rng: np.random.Generator | None = None,
    kernel_times: Mapping[str, Sequence[float]] | None = None,
) -> ReplayResult:
    """Replay ``plan`` once per arrival under the overlapped discipline.

    Args:
        plan: the heterogeneous plan (also used for single-device plans).
        machine: devices + interconnect pricing the virtual clock.
        arrivals: request arrival times, non-decreasing; one replayed
            inference per entry.  ``[0.0]`` prices a single request.
        rng: pass a generator to sample noisy kernel/transfer latencies
            (drawn in commit order — deterministic for a seeded rng);
            ``None`` uses cost-model means.
        kernel_times: optional precomputed mean per-kernel durations
            (task id -> one duration per kernel).  Mean mode only.
    """
    if not arrivals:
        raise ExecutionError("replay_plan needs at least one arrival")
    if any(b < a for a, b in zip(arrivals, list(arrivals)[1:])):
        raise ExecutionError("request arrivals must be non-decreasing")
    host = machine.host
    statics = _Statics(plan, host)
    n_req = len(arrivals)

    # Per-device FIFO of (request, task) in request-major plan order — the
    # executor's queue discipline.
    device_queue: dict[str, list[tuple[int, TaskSpec]]] = {
        d: [] for d in statics.devices
    }
    for req in range(n_req):
        for task in plan.tasks:
            device_queue[task.device].append((req, task))
    head: dict[str, int] = {d: 0 for d in statics.devices}

    device_free: dict[str, float] = {d: 0.0 for d in statics.devices}
    # Every device pair is its own serialized FIFO link with its own free
    # cursor and pending queue; the default machine has exactly one pair,
    # recovering the historical single-link timeline event for event.
    link_free: dict[tuple[str, str], float] = {}
    finish: dict[tuple[int, str], float] = {}
    # (request, tensor key, dest) -> arrival time of the committed copy.
    arrived: dict[tuple[int, tuple, str], float] = {}

    # Per-link pending transfers: (ready, seq, request, key, label, dest,
    # bytes); the global ``seq`` keeps issue order comparable across links.
    pending: dict[
        tuple[str, str], list[tuple[float, int, int, tuple, str, str, float]]
    ] = {}
    seq = 0

    def push_transfer(
        ready: float, req: int, src_dev: str, key: tuple, label: str,
        dest: str, n_bytes: float,
    ) -> None:
        nonlocal seq
        queue = pending.setdefault(_pair(src_dev, dest), [])
        heapq.heappush(queue, (ready, seq, req, key, label, dest, n_bytes))
        seq += 1

    for req in range(n_req):
        for ref, dest, n_bytes in statics.external:
            push_transfer(
                float(arrivals[req]), req, host,
                ("external", ref), f"external:{ref}", dest, n_bytes,
            )

    def issue_outputs(req: int, task: TaskSpec, at: float) -> None:
        for (tid, idx), dests in statics.consumers.items():
            if tid != task.task_id:
                continue
            n_bytes = _output_bytes(task, idx)
            for dest in dests:
                push_transfer(
                    at, req, task.device,
                    ("task", tid, idx), f"task:{tid}[{idx}]", dest, n_bytes,
                )

    def task_start(req: int, task: TaskSpec) -> float | None:
        """Earliest start of the queue head, or ``None`` while blocked."""
        start = max(device_free[task.device], float(arrivals[req]))
        for input_id, src in task.sources.items():
            if src.kind == "external":
                if task.device == host:
                    continue  # host-resident, ready at arrival
                at = arrived.get((req, ("external", src.ref), task.device))
                if at is None:
                    return None
                start = max(start, at)
            else:
                done = finish.get((req, src.ref))
                if done is None:
                    return None
                if statics.task_by_id[src.ref].device == task.device:
                    start = max(start, done)
                else:
                    at = arrived.get(
                        (req, ("task", src.ref, src.output_index), task.device)
                    )
                    if at is None:
                        return None
                    start = max(start, at)
        return start

    tasks_out: list[ReplayTask] = []
    transfers_out: list[ReplayTransfer] = []
    remaining = n_req * len(plan.tasks)

    def pending_left() -> bool:
        return any(pending.values())

    while remaining > 0 or pending_left():
        # Candidate actions, committed in non-decreasing start order.
        # (start, kind-rank, tie, payload); transfers rank first on ties
        # so the rng draw order is deterministic, and the globally unique
        # issue ``seq`` orders transfer ties across links.
        best: tuple | None = None
        for pair in sorted(pending):
            queue = pending[pair]
            if not queue:
                continue
            ready, tseq, *_ = queue[0]
            start = max(link_free.get(pair, 0.0), ready)
            cand = (start, 0, tseq, "xfer", pair)
            if best is None or cand < best:
                best = cand
        for di, dev in enumerate(statics.devices):
            if head[dev] >= len(device_queue[dev]):
                continue
            req, task = device_queue[dev][head[dev]]
            start = task_start(req, task)
            if start is None:
                continue
            cand = (start, 1, di, "task", (req, task))
            if best is None or cand < best:
                best = cand
        if best is None:
            raise ExecutionError(
                "overlapped replay deadlocked: no startable task or "
                "transfer (plan order is not dependency-consistent)"
            )

        start, _, _, kind, payload = best
        if kind == "xfer":
            pair = payload
            ready, _, req, key, label, dest, n_bytes = heapq.heappop(
                pending[pair]
            )
            link = machine.link(pair[0], pair[1])
            if rng is None:
                duration = link.transfer_time(n_bytes)
            else:
                duration = link.sample_transfer_time(n_bytes, rng)
            done = start + duration
            link_free[pair] = done
            arrived[(req, key, dest)] = done
            transfers_out.append(
                ReplayTransfer(
                    request=req, what=label, dest_device=dest,
                    n_bytes=n_bytes, ready=ready, start=start, finish=done,
                )
            )
        else:
            req, task = payload
            device = machine.device(task.device)
            if rng is None:
                times = (
                    kernel_times.get(task.task_id)
                    if kernel_times is not None
                    else None
                )
                if times is None:
                    times = [
                        device.kernel_time(k.cost) for k in task.module.kernels
                    ]
            else:
                times = [
                    device.sample_kernel_time(k.cost, rng)
                    for k in task.module.kernels
                ]
            done = start
            for duration in times:
                done += duration
            head[task.device] += 1
            device_free[task.device] = done
            finish[(req, task.task_id)] = done
            remaining -= 1
            tasks_out.append(
                ReplayTask(
                    request=req, task_id=task.task_id, device=task.device,
                    start=start, finish=done, kernel_durations=tuple(times),
                )
            )
            issue_outputs(req, task, done)

    completions: list[float] = []
    for req in range(n_req):
        done = float(arrivals[req])
        for tid, idx in plan.outputs:
            if statics.task_by_id[tid].device == host:
                done = max(done, finish[(req, tid)])
            else:
                done = max(done, arrived[(req, ("task", tid, idx), host)])
        completions.append(done)
    return ReplayResult(
        tasks=tasks_out, transfers=transfers_out, completions=completions
    )
