"""Per-device memory accounting for a heterogeneous plan.

Deployment engineers need to know what a placement costs in device memory:
every subgraph's parameters are resident on its assigned device for the
lifetime of the engine (DUET loads weights once so only *activations*
cross the PCIe link), and activations peak at the largest working set of
any single subgraph plus its boundary tensors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.plan import HeteroPlan

__all__ = ["DeviceMemory", "MemoryReport", "memory_report"]


@dataclass(frozen=True)
class DeviceMemory:
    """Memory footprint of one device under a plan.

    Attributes:
        param_bytes: resident weights of all subgraphs placed here.
        peak_activation_bytes: largest single-subgraph working set
            (boundary inputs + every intermediate + outputs).
        tasks: number of subgraphs placed here.
    """

    param_bytes: float
    peak_activation_bytes: float
    tasks: int

    @property
    def total_bytes(self) -> float:
        return self.param_bytes + self.peak_activation_bytes


@dataclass(frozen=True)
class MemoryReport:
    """Memory footprint of a plan on both devices."""

    cpu: DeviceMemory
    gpu: DeviceMemory

    def device(self, name: str) -> DeviceMemory:
        return self.cpu if name == "cpu" else self.gpu


def memory_report(plan: HeteroPlan) -> MemoryReport:
    """Compute the per-device memory footprint of ``plan``."""
    stats = {
        "cpu": {"params": 0.0, "peak": 0.0, "tasks": 0},
        "gpu": {"params": 0.0, "peak": 0.0, "tasks": 0},
    }
    for task in plan.tasks:
        graph = task.module.graph
        params = float(sum(n.ty.size_bytes for n in graph.const_nodes()))
        working = float(
            sum(n.ty.size_bytes for n in graph.input_nodes())
            + sum(n.ty.size_bytes for n in graph.op_nodes())
        )
        entry = stats[task.device]
        entry["params"] += params
        entry["peak"] = max(entry["peak"], working)
        entry["tasks"] += 1
    return MemoryReport(
        cpu=DeviceMemory(
            param_bytes=stats["cpu"]["params"],
            peak_activation_bytes=stats["cpu"]["peak"],
            tasks=int(stats["cpu"]["tasks"]),
        ),
        gpu=DeviceMemory(
            param_bytes=stats["gpu"]["params"],
            peak_activation_bytes=stats["gpu"]["peak"],
            tasks=int(stats["gpu"]["tasks"]),
        ),
    )
