"""Per-device memory accounting for a heterogeneous plan.

Deployment engineers need to know what a placement costs in device memory:
every subgraph's parameters are resident on its assigned device for the
lifetime of the engine (DUET loads weights once so only *activations*
cross the PCIe link), and activations peak at the largest working set of
any single subgraph plus its boundary tensors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.runtime.plan import HeteroPlan

__all__ = ["DeviceMemory", "MemoryReport", "TensorArena", "memory_report"]


class TensorArena:
    """Reusable storage for a plan's intermediate tensors.

    An engine session serves many requests from one plan; without an
    arena every kernel output is a fresh allocation on every request.
    The arena keys a stable buffer per value slot (``(task_id, node_id)``)
    and copies each produced tensor into it, so after the first request
    (the warm-up that sizes every slot) repeated runs allocate nothing.

    Slots whose shape or dtype change between runs (which a static-shape
    plan never does) are transparently reallocated rather than corrupted.

    Attributes:
        allocations: total buffers allocated since construction.
    """

    def __init__(self) -> None:
        self._buffers: dict[tuple[str, str], np.ndarray] = {}
        self.allocations = 0

    @property
    def buffer_count(self) -> int:
        """Number of live slot buffers currently held."""
        return len(self._buffers)

    def buffer(self, key: tuple[str, str], shape: tuple, dtype) -> np.ndarray:
        """The slot's stable buffer itself, for kernels that write their
        output in place (the native backend's ``run_into`` path) — skips
        the produce-then-copy round trip of :meth:`store`."""
        buf = self._buffers.get(key)
        if buf is None or buf.shape != tuple(shape) or buf.dtype != np.dtype(dtype):
            buf = np.empty(tuple(shape), dtype=dtype)
            self._buffers[key] = buf
            self.allocations += 1
        return buf

    def store(self, key: tuple[str, str], value: np.ndarray) -> np.ndarray:
        """Copy ``value`` into the slot's stable buffer and return it."""
        value = np.asarray(value)
        buf = self._buffers.get(key)
        if buf is None or buf.shape != value.shape or buf.dtype != value.dtype:
            buf = np.empty_like(value)
            self._buffers[key] = buf
            self.allocations += 1
        np.copyto(buf, value)
        return buf

    def preallocate(self, plan: HeteroPlan) -> int:
        """Size every kernel-output slot from the plan's declared node
        types, so even the first request reuses arena storage; returns
        the number of slots allocated."""
        n = 0
        for task in plan.tasks:
            graph = task.module.graph
            for kernel in task.module.kernels:
                key = (task.task_id, kernel.output_id)
                if key in self._buffers:
                    continue
                ty = graph.node(kernel.output_id).ty
                self._buffers[key] = np.empty(
                    tuple(ty.shape), dtype=ty.dtype.to_numpy()
                )
                self.allocations += 1
                n += 1
        return n


@dataclass(frozen=True)
class DeviceMemory:
    """Memory footprint of one device under a plan.

    Attributes:
        param_bytes: resident weights of all subgraphs placed here.
        peak_activation_bytes: largest single-subgraph working set
            (boundary inputs + every intermediate + outputs).
        tasks: number of subgraphs placed here.
    """

    param_bytes: float
    peak_activation_bytes: float
    tasks: int

    @property
    def total_bytes(self) -> float:
        return self.param_bytes + self.peak_activation_bytes


_NO_FOOTPRINT = DeviceMemory(param_bytes=0.0, peak_activation_bytes=0.0, tasks=0)


@dataclass(frozen=True)
class MemoryReport:
    """Memory footprint of a plan on every device it touches.

    ``per_device`` maps device name -> :class:`DeviceMemory`; devices the
    plan never placed anything on read back as an all-zero footprint (the
    ``cpu``/``gpu`` convenience accessors preserve the historical
    2-device report shape).
    """

    per_device: dict[str, DeviceMemory]

    def device(self, name: str) -> DeviceMemory:
        return self.per_device.get(name, _NO_FOOTPRINT)

    @property
    def cpu(self) -> DeviceMemory:
        return self.device("cpu")

    @property
    def gpu(self) -> DeviceMemory:
        return self.device("gpu")


def memory_report(plan: HeteroPlan) -> MemoryReport:
    """Compute the per-device memory footprint of ``plan``."""
    stats: dict[str, dict[str, float]] = {
        "cpu": {"params": 0.0, "peak": 0.0, "tasks": 0},
        "gpu": {"params": 0.0, "peak": 0.0, "tasks": 0},
    }
    for task in plan.tasks:
        graph = task.module.graph
        params = float(sum(n.ty.size_bytes for n in graph.const_nodes()))
        working = float(
            sum(n.ty.size_bytes for n in graph.input_nodes())
            + sum(n.ty.size_bytes for n in graph.op_nodes())
        )
        entry = stats.setdefault(
            task.device, {"params": 0.0, "peak": 0.0, "tasks": 0}
        )
        entry["params"] += params
        entry["peak"] = max(entry["peak"], working)
        entry["tasks"] += 1
    return MemoryReport(
        per_device={
            dev: DeviceMemory(
                param_bytes=entry["params"],
                peak_activation_bytes=entry["peak"],
                tasks=int(entry["tasks"]),
            )
            for dev, entry in stats.items()
        }
    )
