"""Runtime: plans, the event simulator, executors, faults, and measurement."""

from repro.runtime.faults import (
    DeviceLoss,
    FaultInjector,
    FaultPlan,
    KernelFault,
    StallFault,
    TransferFault,
)
from repro.runtime.measurement import (
    LatencyStats,
    measure_latency,
    measure_latency_batch,
)
from repro.runtime.resilient import (
    ExecutionEvent,
    ExecutionReport,
    ResilienceConfig,
    ResilientExecutor,
    RetryPolicy,
)
from repro.runtime.memory import DeviceMemory, MemoryReport, memory_report
from repro.runtime.plan import HeteroPlan, Source, TaskSpec
from repro.runtime.simulator import (
    ExecutionResult,
    KernelRecord,
    TaskRecord,
    TransferRecord,
    simulate,
    simulate_batch,
)
from repro.runtime.single import run_single_device, single_device_plan
from repro.runtime.stream import StreamResult, simulate_stream
from repro.runtime.threaded import ThreadedExecutor, ThreadedResult

__all__ = [
    "DeviceLoss",
    "ExecutionEvent",
    "ExecutionReport",
    "ExecutionResult",
    "FaultInjector",
    "FaultPlan",
    "KernelFault",
    "ResilienceConfig",
    "ResilientExecutor",
    "RetryPolicy",
    "StallFault",
    "TransferFault",
    "ThreadedExecutor",
    "ThreadedResult",
    "HeteroPlan",
    "KernelRecord",
    "LatencyStats",
    "Source",
    "TaskRecord",
    "TaskSpec",
    "TransferRecord",
    "measure_latency",
    "measure_latency_batch",
    "memory_report",
    "DeviceMemory",
    "MemoryReport",
    "run_single_device",
    "simulate",
    "simulate_batch",
    "single_device_plan",
    "simulate_stream",
    "StreamResult",
]
