"""Runtime: execution plans, the event simulator, and measurement."""

from repro.runtime.measurement import LatencyStats, measure_latency
from repro.runtime.memory import DeviceMemory, MemoryReport, memory_report
from repro.runtime.plan import HeteroPlan, Source, TaskSpec
from repro.runtime.simulator import (
    ExecutionResult,
    KernelRecord,
    TaskRecord,
    TransferRecord,
    simulate,
)
from repro.runtime.single import run_single_device, single_device_plan
from repro.runtime.stream import StreamResult, simulate_stream
from repro.runtime.threaded import ThreadedExecutor, ThreadedResult

__all__ = [
    "ExecutionResult",
    "ThreadedExecutor",
    "ThreadedResult",
    "HeteroPlan",
    "KernelRecord",
    "LatencyStats",
    "Source",
    "TaskRecord",
    "TaskSpec",
    "TransferRecord",
    "measure_latency",
    "memory_report",
    "DeviceMemory",
    "MemoryReport",
    "run_single_device",
    "simulate",
    "single_device_plan",
    "simulate_stream",
    "StreamResult",
]
