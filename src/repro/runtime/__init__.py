"""Runtime: plans, the unified dispatch core, executors, faults, sessions."""

from repro.runtime.core import (
    AbortPolicy,
    CoreResult,
    DispatchKernel,
    ExecutionEvent,
    FailoverPolicy,
    FaultInjectionMiddleware,
    InlineWorkers,
    InvariantMiddleware,
    MetricsMiddleware,
    RetryMiddleware,
    TaskDeadlineMiddleware,
    ThreadedWorkers,
    TracingMiddleware,
    TransferGuardMiddleware,
    execute_kernels,
    resolve_feeds,
)
from repro.runtime.faults import (
    DeviceLoss,
    FaultInjector,
    FaultPlan,
    KernelFault,
    StallFault,
    TransferFault,
)
from repro.runtime.measurement import (
    LatencyStats,
    measure_latency,
    measure_latency_batch,
)
from repro.runtime.resilient import (
    ExecutionReport,
    ResilienceConfig,
    ResilientExecutor,
    RetryPolicy,
)
from repro.runtime.memory import (
    DeviceMemory,
    MemoryReport,
    TensorArena,
    memory_report,
)
from repro.runtime.plan import HeteroPlan, Source, TaskSpec
from repro.runtime.session import EngineSession, SessionResult
from repro.runtime.simulator import (
    ExecutionResult,
    KernelRecord,
    TaskRecord,
    TransferRecord,
    simulate,
    simulate_batch,
)
from repro.runtime.single import (
    SingleDeviceResult,
    run_single_device,
    single_device_plan,
)
from repro.runtime.stream import StreamResult, simulate_stream
from repro.runtime.threaded import ThreadedExecutor, ThreadedResult

__all__ = [
    "AbortPolicy",
    "CoreResult",
    "DeviceLoss",
    "DispatchKernel",
    "EngineSession",
    "ExecutionEvent",
    "ExecutionReport",
    "ExecutionResult",
    "FailoverPolicy",
    "FaultInjectionMiddleware",
    "FaultInjector",
    "FaultPlan",
    "InlineWorkers",
    "InvariantMiddleware",
    "KernelFault",
    "MetricsMiddleware",
    "ResilienceConfig",
    "ResilientExecutor",
    "RetryMiddleware",
    "RetryPolicy",
    "SessionResult",
    "SingleDeviceResult",
    "StallFault",
    "TaskDeadlineMiddleware",
    "ThreadedWorkers",
    "TracingMiddleware",
    "TransferFault",
    "TransferGuardMiddleware",
    "ThreadedExecutor",
    "ThreadedResult",
    "HeteroPlan",
    "KernelRecord",
    "LatencyStats",
    "Source",
    "TaskRecord",
    "TaskSpec",
    "TransferRecord",
    "execute_kernels",
    "measure_latency",
    "measure_latency_batch",
    "memory_report",
    "resolve_feeds",
    "DeviceMemory",
    "MemoryReport",
    "TensorArena",
    "run_single_device",
    "simulate",
    "simulate_batch",
    "single_device_plan",
    "simulate_stream",
    "StreamResult",
]
