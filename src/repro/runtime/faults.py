"""Deterministic fault injection for chaos-testing the executors.

A :class:`FaultPlan` declares *what* goes wrong — transient kernel
failures, latency stalls, transfer corruption/failure, permanent device
loss — and a :class:`FaultInjector` turns the plan into per-run stateful
hooks that both real executors (:class:`~repro.runtime.threaded.ThreadedExecutor`,
:class:`~repro.runtime.resilient.ResilientExecutor`) and the virtual-time
simulator (:func:`~repro.runtime.simulator.simulate`) call at well-defined
points.  All behaviour is a pure function of the plan plus attempt
counters, so chaos scenarios replay identically run after run: the same
task attempt fails, the same transfer corrupts, the same device dies.

Wall-clock hooks (executors):

* :meth:`FaultInjector.on_task_start` — called once per execution
  *attempt* of a task; may sleep (stall), raise
  :class:`~repro.errors.TransientKernelError`, or raise
  :class:`~repro.errors.DeviceLostError`.
* :meth:`FaultInjector.on_transfer` — called when a tensor crosses
  devices; may raise :class:`~repro.errors.TransferError` or return a
  corrupted copy of the array.

Virtual-time hook (simulator):

* :meth:`FaultInjector.on_virtual_task` — returns extra virtual seconds
  (stalls) and raises for kernel faults / device loss, so schedulers and
  planners can be chaos-tested without spawning a single thread.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import (
    DeviceLostError,
    ExecutionError,
    TransferError,
    TransientKernelError,
)

__all__ = [
    "KernelFault",
    "StallFault",
    "TransferFault",
    "DeviceLoss",
    "FaultPlan",
    "FaultInjector",
    "ScriptedChaosInjector",
]

def _check_device(name: str, what: str) -> None:
    """Device names are open-ended on a mesh; only reject junk values."""
    if not isinstance(name, str) or not name:
        raise ExecutionError(f"invalid {what} device {name!r}")


@dataclass(frozen=True)
class KernelFault:
    """Transient kernel failure: the first ``fail_attempts`` execution
    attempts of ``task_id`` raise :class:`TransientKernelError`."""

    task_id: str
    fail_attempts: int = 1
    message: str = "injected transient kernel fault"

    def __post_init__(self) -> None:
        if self.fail_attempts < 1:
            raise ExecutionError(
                f"KernelFault.fail_attempts must be >= 1, got {self.fail_attempts}"
            )


@dataclass(frozen=True)
class StallFault:
    """Latency stall: the first ``stall_attempts`` attempts of ``task_id``
    take an extra ``delay_s`` seconds (wall-clock in the executors,
    virtual seconds in the simulator)."""

    task_id: str
    delay_s: float
    stall_attempts: int = 1

    def __post_init__(self) -> None:
        if self.delay_s < 0:
            raise ExecutionError(f"StallFault.delay_s must be >= 0, got {self.delay_s}")
        if self.stall_attempts < 1:
            raise ExecutionError(
                f"StallFault.stall_attempts must be >= 1, got {self.stall_attempts}"
            )


@dataclass(frozen=True)
class TransferFault:
    """A faulty cross-device transfer of the tensor produced by ``ref``
    (a task id, or an external input name) arriving on ``dest_device``.

    ``mode="fail"`` raises :class:`TransferError`; ``mode="corrupt"``
    silently delivers a poisoned copy (NaN-filled for floats, a saturated
    fill for integers).  Either way only the first ``fail_attempts``
    fetches misbehave, so a retry observes a clean transfer.
    """

    ref: str
    dest_device: str
    mode: str = "fail"
    fail_attempts: int = 1

    def __post_init__(self) -> None:
        if self.mode not in ("fail", "corrupt"):
            raise ExecutionError(f"invalid TransferFault mode {self.mode!r}")
        _check_device(self.dest_device, "TransferFault")
        if self.fail_attempts < 1:
            raise ExecutionError(
                f"TransferFault.fail_attempts must be >= 1, got {self.fail_attempts}"
            )


@dataclass(frozen=True)
class DeviceLoss:
    """Permanent device loss, triggered at a chosen task or virtual time.

    ``at_task``: the device dies the moment that task is dispatched (on
    any device — if the task itself sits on the dying device, its attempt
    raises :class:`DeviceLostError`).  ``at_time``: in the simulator, any
    task starting at or after this virtual time on the device raises.
    """

    device: str
    at_task: str | None = None
    at_time: float | None = None

    def __post_init__(self) -> None:
        _check_device(self.device, "DeviceLoss")
        if self.at_task is None and self.at_time is None:
            raise ExecutionError("DeviceLoss needs at_task or at_time")


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of everything that will go wrong in a run."""

    kernel_faults: tuple[KernelFault, ...] = ()
    stalls: tuple[StallFault, ...] = ()
    transfer_faults: tuple[TransferFault, ...] = ()
    device_losses: tuple[DeviceLoss, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        # Tolerate lists in hand-written plans.
        for name in ("kernel_faults", "stalls", "transfer_faults", "device_losses"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))

    @property
    def is_empty(self) -> bool:
        """True when the plan injects nothing at all."""
        return not (
            self.kernel_faults
            or self.stalls
            or self.transfer_faults
            or self.device_losses
        )


class FaultInjector:
    """Stateful, seeded realization of a :class:`FaultPlan` for one run.

    The injector counts attempts per task and per transfer so "fail the
    first *k* attempts" semantics compose with the resilient executor's
    retry loop.  Call :meth:`reset` to reuse one injector across runs.
    """

    def __init__(self, plan: FaultPlan | None = None):
        self.plan = plan or FaultPlan()
        self._kernel = {f.task_id: f for f in self.plan.kernel_faults}
        self._stall = {f.task_id: f for f in self.plan.stalls}
        self._transfer = {
            (f.ref, f.dest_device): f for f in self.plan.transfer_faults
        }
        self._loss_at_task: dict[str, list[DeviceLoss]] = {}
        self._loss_at_time: list[DeviceLoss] = []
        for loss in self.plan.device_losses:
            if loss.at_task is not None:
                self._loss_at_task.setdefault(loss.at_task, []).append(loss)
            if loss.at_time is not None:
                self._loss_at_time.append(loss)
        self.reset()

    def reset(self) -> None:
        """Forget all attempt counters and revive lost devices."""
        self._task_attempts: dict[str, int] = {}
        self._transfer_attempts: dict[tuple[str, str], int] = {}
        self._lost: set[str] = set()
        self._rng = np.random.default_rng(self.plan.seed)

    # ------------------------------------------------------------------
    # Introspection

    def task_attempts(self, task_id: str) -> int:
        """How many execution attempts of ``task_id`` have started."""
        return self._task_attempts.get(task_id, 0)

    def device_is_lost(self, device: str) -> bool:
        """True once ``device`` has been permanently lost this run."""
        return device in self._lost

    def mark_device_lost(self, device: str) -> None:
        """Force-mark a device as lost (used by executors on failover)."""
        self._lost.add(device)

    def revive_device(self, device: str) -> None:
        """Bring a lost device back (driver reset / hot-plug recovery).

        Subsequent dispatches onto ``device`` stop raising
        :class:`DeviceLostError`; attempt counters are untouched so
        unrelated fault schedules keep replaying deterministically.
        """
        self._lost.discard(device)

    # ------------------------------------------------------------------
    # Wall-clock hooks (ThreadedExecutor / ResilientExecutor)

    def on_task_start(self, task_id: str, device: str) -> None:
        """Hook for the start of one execution attempt.

        May sleep (:class:`StallFault`), raise
        :class:`TransientKernelError` (:class:`KernelFault`) or raise
        :class:`DeviceLostError` (:class:`DeviceLoss` trigger, or any
        dispatch onto an already-lost device).
        """
        for loss in self._loss_at_task.get(task_id, ()):  # trigger deaths
            self._lost.add(loss.device)
        if device in self._lost:
            raise DeviceLostError(device)
        attempt = self._task_attempts.get(task_id, 0) + 1
        self._task_attempts[task_id] = attempt
        stall = self._stall.get(task_id)
        if stall is not None and attempt <= stall.stall_attempts:
            time.sleep(stall.delay_s)
        fault = self._kernel.get(task_id)
        if fault is not None and attempt <= fault.fail_attempts:
            raise TransientKernelError(
                f"{fault.message} (task {task_id!r}, attempt {attempt})"
            )

    def on_transfer(
        self, ref: str, dest_device: str, array: np.ndarray
    ) -> np.ndarray:
        """Hook for a tensor crossing devices toward ``dest_device``.

        Returns the (possibly corrupted) array; raises
        :class:`TransferError` for ``mode="fail"`` faults.
        """
        fault = self._transfer.get((ref, dest_device))
        if fault is None:
            return array
        key = (ref, dest_device)
        attempt = self._transfer_attempts.get(key, 0) + 1
        self._transfer_attempts[key] = attempt
        if attempt > fault.fail_attempts:
            return array
        if fault.mode == "fail":
            raise TransferError(
                f"injected transfer failure of {ref!r} -> {dest_device} "
                f"(attempt {attempt})"
            )
        return self._corrupt(array)

    def _corrupt(self, array: np.ndarray) -> np.ndarray:
        poisoned = np.array(array, copy=True)
        if np.issubdtype(poisoned.dtype, np.floating):
            poisoned.fill(np.nan)
        elif np.issubdtype(poisoned.dtype, np.integer):
            poisoned.fill(np.iinfo(poisoned.dtype).max)
        return poisoned

    # ------------------------------------------------------------------
    # Virtual-time hook (simulator)

    def on_virtual_task(self, task_id: str, device: str, start: float) -> float:
        """Hook for one task starting at virtual time ``start``.

        Returns extra virtual seconds to add to the task (stalls);
        raises for kernel faults and device loss.  Transfer faults do not
        apply in the simulator (it prices transfers, it does not move
        data).
        """
        for loss in self._loss_at_task.get(task_id, ()):
            self._lost.add(loss.device)
        for loss in self._loss_at_time:
            if start >= loss.at_time:
                self._lost.add(loss.device)
        if device in self._lost:
            raise DeviceLostError(device)
        attempt = self._task_attempts.get(task_id, 0) + 1
        self._task_attempts[task_id] = attempt
        fault = self._kernel.get(task_id)
        if fault is not None and attempt <= fault.fail_attempts:
            raise TransientKernelError(
                f"{fault.message} (task {task_id!r}, attempt {attempt})"
            )
        stall = self._stall.get(task_id)
        if stall is not None and attempt <= stall.stall_attempts:
            return stall.delay_s
        return 0.0


class ScriptedChaosInjector(FaultInjector):
    """Thread-safe injector whose faults are switched on and off live.

    :class:`FaultInjector` realizes a *declarative* plan fixed before the
    run and is documented as single-run, single-thread.  The serving
    chaos harness needs the opposite shape: one injector shared by a pool
    of worker slots, with the *harness* thread flipping fault modes while
    request threads execute — "now everything is transient-flaky", "now
    the GPU is gone", "now recover".  This subclass adds a mode switch
    guarded by a lock, so the scripted schedule composes with concurrent
    `EngineSession` pools:

    * ``set_mode("transient", rate=k)`` — every *k*-th task attempt
      (globally, across all threads) raises
      :class:`~repro.errors.TransientKernelError`; retries in between
      succeed, so the retry middleware absorbs the noise.
    * ``set_mode("stall", stall_s=d)`` — every ``rate``-th attempt sleeps
      an extra ``d`` seconds before running.
    * ``lose_device(dev)`` / ``revive_device(dev)`` — permanent loss and
      hot-plug recovery, reusing the base class's lost-device set (all
      reads/writes of that set happen under the mode lock here).
    * ``set_mode(None)`` — healthy.

    Determinism is per-schedule, not per-interleaving: the *number* of
    injected faults is a pure function of the attempt counter, but which
    request observes fault *i* depends on thread timing — exactly the
    nondeterminism the serving invariants (terminal-state accounting,
    bit-identical successes) must hold under.
    """

    def __init__(self) -> None:
        super().__init__(FaultPlan())
        self._script_lock = threading.Lock()
        self._mode: str | None = None
        self._rate = 1
        self._stall_s = 0.0
        self._calls = 0

    def set_mode(
        self, mode: str | None, rate: int = 3, stall_s: float = 0.0
    ) -> None:
        """Switch the active fault mode (``"transient"``/``"stall"``/None)."""
        if mode not in (None, "transient", "stall"):
            raise ExecutionError(f"invalid chaos mode {mode!r}")
        if rate < 1:
            raise ExecutionError(f"chaos rate must be >= 1, got {rate}")
        if stall_s < 0:
            raise ExecutionError(f"stall_s must be >= 0, got {stall_s}")
        with self._script_lock:
            self._mode = mode
            self._rate = rate
            self._stall_s = stall_s

    def lose_device(self, device: str) -> None:
        """Permanently lose ``device`` until :meth:`revive_device`."""
        _check_device(device, "lose_device")
        with self._script_lock:
            self._lost.add(device)

    def revive_device(self, device: str) -> None:
        with self._script_lock:
            self._lost.discard(device)

    def device_is_lost(self, device: str) -> bool:
        with self._script_lock:
            return device in self._lost

    def mark_device_lost(self, device: str) -> None:
        with self._script_lock:
            self._lost.add(device)

    # ------------------------------------------------------------------

    def on_task_start(self, task_id: str, device: str) -> None:
        with self._script_lock:
            if device in self._lost:
                raise DeviceLostError(device)
            if self._mode is None:
                return
            self._calls += 1
            fire = self._calls % self._rate == 0
            mode, stall_s = self._mode, self._stall_s
        if not fire:
            return
        if mode == "transient":
            raise TransientKernelError(
                f"scripted transient fault (task {task_id!r})"
            )
        if mode == "stall" and stall_s > 0:
            time.sleep(stall_s)

    def on_transfer(
        self, ref: str, dest_device: str, array: np.ndarray
    ) -> np.ndarray:
        with self._script_lock:
            if dest_device in self._lost:
                raise DeviceLostError(dest_device)
        return array
