"""Single-device execution: the Operators-in-Sequence schedule.

This is how TVM executes a compiled model in the paper (§III-A): kernels
run synchronously in topological order on one device.  It is expressed as
a one-task :class:`~repro.runtime.plan.HeteroPlan`, so the same simulator
prices it — including host↔device transfers when the device is the GPU.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.compiler.lowering import CompiledModule
from repro.devices.machine import Machine
from repro.runtime.plan import HeteroPlan, Source, TaskSpec
from repro.runtime.simulator import ExecutionResult, simulate

__all__ = ["single_device_plan", "run_single_device"]


def single_device_plan(module: CompiledModule, device: str) -> HeteroPlan:
    """Wrap a whole-model module as a one-task plan on ``device``."""
    task = TaskSpec(
        task_id=f"{module.graph.name}@{device}",
        device=device,
        module=module,
        sources={
            iid: Source(kind="external", ref=iid) for iid in module.input_ids
        },
    )
    outputs = [(task.task_id, i) for i in range(len(module.output_ids))]
    return HeteroPlan(tasks=[task], outputs=outputs)


def run_single_device(
    module: CompiledModule,
    device: str,
    machine: Machine,
    rng: np.random.Generator | None = None,
    inputs: Mapping[str, np.ndarray] | None = None,
) -> ExecutionResult:
    """One inference of ``module`` entirely on ``device``."""
    return simulate(single_device_plan(module, device), machine, rng=rng, inputs=inputs)
