"""Single-device execution: the Operators-in-Sequence schedule.

This is how TVM executes a compiled model in the paper (§III-A): kernels
run synchronously in topological order on one device.  It is expressed as
a one-task :class:`~repro.runtime.plan.HeteroPlan`, so the same simulator
prices it — including host↔device transfers when the device is the GPU —
and the same unified dispatch kernel (:class:`~repro.runtime.core.
DispatchKernel` with :class:`~repro.runtime.core.InlineWorkers`) executes
it numerically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.compiler.lowering import CompiledModule
from repro.devices.machine import Machine
from repro.runtime.core import DispatchKernel, InlineWorkers
from repro.runtime.plan import HeteroPlan, Source, TaskSpec
from repro.runtime.simulator import ExecutionResult, simulate

__all__ = ["SingleDeviceResult", "single_device_plan", "run_single_device"]


@dataclass
class SingleDeviceResult(ExecutionResult):
    """Outcome of one single-device inference.

    Extends the simulator's :class:`~repro.runtime.simulator.
    ExecutionResult` (virtual ``latency``, task/transfer records, and
    ``outputs`` when inputs were supplied) with the host ``wall_time_s``
    the other executors' results carry
    (:class:`~repro.runtime.threaded.ThreadedResult`,
    :class:`~repro.runtime.resilient.ExecutionReport`).

    Dict-style access (``result["latency"]``) was deprecated for one
    cycle and has been removed; use attribute access.
    """

    wall_time_s: float = 0.0

    def __getitem__(self, key: str):
        """Removed dict-style field access; raises a directing TypeError."""
        raise TypeError(
            "dict-style access to run_single_device results was removed "
            "after its deprecation cycle; use the "
            f".{key} attribute instead of [{key!r}]"
        )


def single_device_plan(module: CompiledModule, device: str) -> HeteroPlan:
    """Wrap a whole-model module as a one-task plan on ``device``."""
    task = TaskSpec(
        task_id=f"{module.graph.name}@{device}",
        device=device,
        module=module,
        sources={
            iid: Source(kind="external", ref=iid) for iid in module.input_ids
        },
    )
    outputs = [(task.task_id, i) for i in range(len(module.output_ids))]
    return HeteroPlan(tasks=[task], outputs=outputs)


def run_single_device(
    module: CompiledModule,
    device: str,
    machine: Machine,
    rng: np.random.Generator | None = None,
    inputs: Mapping[str, np.ndarray] | None = None,
    overlap: bool = False,
) -> SingleDeviceResult:
    """One inference of ``module`` entirely on ``device``.

    Timing comes from the discrete-event simulator (``overlap`` selects
    the lazy vs. double-buffered transfer discipline); when ``inputs`` are
    given the kernels also execute numerically through the unified
    dispatch kernel (inline worker strategy), so the returned ``outputs``
    go through exactly the same code path as every other executor.
    """
    began = time.perf_counter()
    plan = single_device_plan(module, device)
    sim = simulate(plan, machine, rng=rng, overlap=overlap)
    outputs = None
    if inputs is not None:
        outputs = DispatchKernel(plan, workers=InlineWorkers()).run(inputs).outputs
    return SingleDeviceResult(
        latency=sim.latency,
        tasks=sim.tasks,
        transfers=sim.transfers,
        outputs=outputs,
        wall_time_s=time.perf_counter() - began,
    )
