"""Latency-distribution measurement.

The paper runs each configuration 5000 times and reports mean and tail
(P50/P99/P99.9) latency with warm-up excluded (§VI-A).  This module
provides that harness for any ``rng -> latency`` sampler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ExecutionError

__all__ = ["LatencyStats", "measure_latency", "measure_latency_batch"]


@dataclass(frozen=True)
class LatencyStats:
    """Summary of a latency distribution (seconds).

    Attributes mirror the paper's reporting: mean plus P50/P99/P99.9.
    """

    mean: float
    std: float
    p50: float
    p99: float
    p999: float
    n_samples: int

    @property
    def mean_ms(self) -> float:
        return self.mean * 1e3

    @property
    def p50_ms(self) -> float:
        return self.p50 * 1e3

    @property
    def p99_ms(self) -> float:
        return self.p99 * 1e3

    @property
    def p999_ms(self) -> float:
        return self.p999 * 1e3

    @staticmethod
    def from_samples(samples: np.ndarray) -> "LatencyStats":
        if samples.size == 0:
            raise ExecutionError("cannot summarize an empty sample set")
        return LatencyStats(
            mean=float(samples.mean()),
            std=float(samples.std()),
            p50=float(np.percentile(samples, 50)),
            p99=float(np.percentile(samples, 99)),
            p999=float(np.percentile(samples, 99.9)),
            n_samples=int(samples.size),
        )


def measure_latency(
    run_once: Callable[[np.random.Generator], float],
    n_runs: int = 5000,
    warmup: int = 50,
    seed: int = 0,
) -> LatencyStats:
    """Measure a latency distribution the way the paper does.

    Args:
        run_once: draws one inference latency given an RNG.
        n_runs: measured iterations (paper: 5000).
        warmup: discarded leading iterations.
        seed: base RNG seed.
    """
    rng = np.random.default_rng(seed)
    for _ in range(warmup):
        run_once(rng)
    samples = np.fromiter(
        (run_once(rng) for _ in range(n_runs)), dtype=np.float64, count=n_runs
    )
    return LatencyStats.from_samples(samples)


def measure_latency_batch(
    sample_batch: Callable[[np.random.Generator, int], np.ndarray],
    n_runs: int = 5000,
    warmup: int = 50,
    seed: int = 0,
) -> LatencyStats:
    """Vectorized counterpart of :func:`measure_latency`.

    Instead of ``warmup + n_runs`` sequential simulator walks, the sampler
    draws all latencies in one batched call (e.g.
    :func:`repro.runtime.simulator.simulate_batch`); the leading ``warmup``
    samples are discarded, mirroring the paper's warm-up exclusion.
    Results are reproducible for a given seed.

    Args:
        sample_batch: ``(rng, n) -> n latencies`` as a 1-D array.
        n_runs: measured iterations (paper: 5000).
        warmup: discarded leading iterations.
        seed: base RNG seed.
    """
    rng = np.random.default_rng(seed)
    total = warmup + n_runs
    samples = np.asarray(sample_batch(rng, total), dtype=np.float64)
    if samples.shape != (total,):
        raise ExecutionError(
            f"batch sampler returned shape {samples.shape}, expected ({total},)"
        )
    return LatencyStats.from_samples(samples[warmup:])
