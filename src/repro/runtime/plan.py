"""Heterogeneous execution plans.

A plan is the executor's input (paper Fig. 9): a set of compiled subgraph
tasks, each pinned to a device, wired together by data edges.  Tensors are
produced on the producer's device; consuming them from a different device
implies a link transfer, which the simulator prices and the scheduler's
correction step optimizes against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.compiler.lowering import CompiledModule
from repro.errors import SchedulingError

__all__ = ["Source", "TaskSpec", "HeteroPlan"]


@dataclass(frozen=True)
class Source:
    """Where a task input comes from.

    Attributes:
        kind: ``"external"`` (a model input, resident on the host) or
            ``"task"`` (another task's output).
        ref: the external input name, or the producing task id.
        output_index: which output of the producing task (tasks may expose
            several boundary tensors).
    """

    kind: str
    ref: str
    output_index: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("external", "task"):
            raise SchedulingError(f"invalid source kind {self.kind!r}")


@dataclass(frozen=True)
class TaskSpec:
    """One placed, compiled subgraph.

    Attributes:
        task_id: unique id within the plan.
        device: a mesh device placement name (``"cpu"``/``"gpu"`` on the
            default machine).  The plan itself only requires a non-empty
            name; membership in a concrete machine's device set is
            checked when the plan meets that machine (assembly,
            simulation, :func:`~repro.testing.invariants.check_plan`).
        module: the subgraph compiled for that device.
        sources: module input id -> where its value comes from.
        phase_index: the partition phase this task belongs to (display/
            priority metadata).
    """

    task_id: str
    device: str
    module: CompiledModule
    sources: Mapping[str, Source]
    phase_index: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.device, str) or not self.device:
            raise SchedulingError(f"invalid device {self.device!r}")
        missing = set(self.module.input_ids) - set(self.sources)
        if missing:
            raise SchedulingError(
                f"task {self.task_id!r} has unwired inputs: {sorted(missing)}"
            )


@dataclass
class HeteroPlan:
    """A complete heterogeneous execution plan.

    Attributes:
        tasks: tasks in a topological (dependency-respecting) order — this
            is also the priority order workers use when several tasks are
            runnable.
        outputs: the model outputs as (task_id, output_index) pairs.
    """

    tasks: list[TaskSpec]
    outputs: list[tuple[str, int]]

    def __post_init__(self) -> None:
        ids = [t.task_id for t in self.tasks]
        if len(set(ids)) != len(ids):
            raise SchedulingError("duplicate task ids in plan")
        seen: set[str] = set()
        for task in self.tasks:
            for src in task.sources.values():
                if src.kind == "task" and src.ref not in seen:
                    raise SchedulingError(
                        f"task {task.task_id!r} depends on {src.ref!r} which "
                        "does not precede it in the plan order"
                    )
            seen.add(task.task_id)
        for tid, _idx in self.outputs:
            if tid not in seen:
                raise SchedulingError(f"plan output references unknown task {tid!r}")

    def task(self, task_id: str) -> TaskSpec:
        for t in self.tasks:
            if t.task_id == task_id:
                return t
        raise SchedulingError(f"unknown task {task_id!r}")

    def devices_used(self) -> set[str]:
        return {t.device for t in self.tasks}
