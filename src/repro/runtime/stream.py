"""Request-stream simulation: throughput and queueing on a hetero plan.

The paper evaluates single-request latency; a serving system also cares
about *throughput*.  Because DUET keeps both devices resident, consecutive
requests pipeline naturally: while request *r*'s RNN subgraph occupies the
CPU, request *r+1*'s CNN subgraph can already run on the GPU.  This module
replays a stream of requests through a plan with shared device and link
timelines, yielding per-request latencies and steady-state throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.machine import Machine
from repro.errors import ExecutionError
from repro.runtime.plan import HeteroPlan

__all__ = ["StreamResult", "simulate_stream"]


@dataclass(frozen=True)
class StreamResult:
    """Outcome of a simulated request stream.

    Attributes:
        latencies: per-request end-to-end latency (completion - arrival).
        makespan: time from first arrival to last completion.
        throughput: completed requests per second over the makespan.
    """

    latencies: tuple[float, ...]
    makespan: float
    throughput: float

    @property
    def mean_latency(self) -> float:
        return float(np.mean(self.latencies))

    @property
    def max_latency(self) -> float:
        return float(np.max(self.latencies))


def simulate_stream(
    plan: HeteroPlan,
    machine: Machine,
    n_requests: int,
    interarrival_s: float = 0.0,
    rng: np.random.Generator | None = None,
) -> StreamResult:
    """Run ``n_requests`` inferences through ``plan`` back to back.

    Requests arrive at ``i * interarrival_s`` (0 = closed-loop burst).
    Devices and the PCIe link are shared FIFO resources across requests,
    so pipelining and queueing emerge from the timeline bookkeeping.
    """
    if n_requests <= 0:
        raise ExecutionError("n_requests must be positive")
    device_free = {"cpu": 0.0, "gpu": 0.0}
    link_free = 0.0
    completions: list[float] = []

    def transfer(duration_bytes: float, ready_at: float) -> float:
        nonlocal link_free
        link = machine.interconnect
        if rng is None:
            duration = link.transfer_time(duration_bytes)
        else:
            duration = link.sample_transfer_time(duration_bytes, rng)
        start = max(link_free, ready_at)
        link_free = start + duration
        return link_free

    for req in range(n_requests):
        arrival = req * interarrival_s
        finish: dict[str, float] = {}
        arrived_on: dict[tuple[str, str], float] = {}  # (value key, device)

        for task in plan.tasks:
            input_ready = arrival
            for input_id, src in task.sources.items():
                n_bytes = float(task.module.graph.node(input_id).ty.size_bytes)
                if src.kind == "external":
                    key, produced_at, produced_on = (
                        f"ext:{src.ref}", arrival, "cpu",
                    )
                else:
                    producer = plan.task(src.ref)
                    out_id = producer.module.output_ids[src.output_index]
                    n_bytes = float(
                        producer.module.graph.node(out_id).ty.size_bytes
                    )
                    key = f"task:{src.ref}:{src.output_index}"
                    produced_at = finish[src.ref]
                    produced_on = producer.device
                if produced_on == task.device:
                    ready = produced_at
                else:
                    cache = arrived_on.get((key, task.device))
                    if cache is None:
                        cache = transfer(n_bytes, produced_at)
                        arrived_on[(key, task.device)] = cache
                    ready = cache
                input_ready = max(input_ready, ready)

            device = machine.device(task.device)
            if rng is None:
                exec_time = sum(
                    device.kernel_time(k.cost) for k in task.module.kernels
                )
            else:
                exec_time = sum(
                    device.sample_kernel_time(k.cost, rng)
                    for k in task.module.kernels
                )
            start = max(device_free[task.device], input_ready)
            finish[task.task_id] = start + exec_time
            device_free[task.device] = finish[task.task_id]

        done = arrival
        for tid, idx in plan.outputs:
            producer = plan.task(tid)
            if producer.device == "cpu":
                done = max(done, finish[tid])
            else:
                out_id = producer.module.output_ids[idx]
                n_bytes = float(producer.module.graph.node(out_id).ty.size_bytes)
                key = f"task:{tid}:{idx}"
                cache = arrived_on.get((key, "cpu"))
                if cache is None:
                    cache = transfer(n_bytes, finish[tid])
                    arrived_on[(key, "cpu")] = cache
                done = max(done, cache)
        completions.append(done)

    latencies = tuple(
        done - req * interarrival_s for req, done in enumerate(completions)
    )
    makespan = max(completions)
    return StreamResult(
        latencies=latencies,
        makespan=makespan,
        throughput=n_requests / makespan if makespan > 0 else float("inf"),
    )
