"""Request-stream simulation: throughput and queueing on a hetero plan.

The paper evaluates single-request latency; a serving system also cares
about *throughput*.  Because DUET keeps both devices resident, consecutive
requests pipeline naturally: while request *r*'s RNN subgraph occupies the
CPU, request *r+1*'s CNN subgraph can already run on the GPU.  This module
replays a stream of requests through a plan with shared device and link
timelines, yielding per-request latencies and steady-state throughput.

The replay itself lives in :mod:`repro.runtime.overlap`: devices are
derived from the plan (not hard-coded to cpu/gpu), and the shared PCIe
link serves transfers in *ready order* rather than the order the replay
happens to visit tasks — an earlier-ready copy is never stuck behind a
later-ready one that merely appears earlier in some request's plan walk.
A one-request stream therefore prices identically to
``simulate(plan, machine, overlap=True)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.machine import Machine
from repro.errors import ExecutionError
from repro.runtime.overlap import replay_plan
from repro.runtime.plan import HeteroPlan

__all__ = ["StreamResult", "simulate_stream"]


@dataclass(frozen=True)
class StreamResult:
    """Outcome of a simulated request stream.

    Attributes:
        latencies: per-request end-to-end latency (completion - arrival).
        makespan: time from first arrival to last completion.
        throughput: completed requests per second over the makespan.
    """

    latencies: tuple[float, ...]
    makespan: float
    throughput: float

    @property
    def mean_latency(self) -> float:
        return float(np.mean(self.latencies))

    @property
    def max_latency(self) -> float:
        return float(np.max(self.latencies))


def simulate_stream(
    plan: HeteroPlan,
    machine: Machine,
    n_requests: int,
    interarrival_s: float = 0.0,
    rng: np.random.Generator | None = None,
) -> StreamResult:
    """Run ``n_requests`` inferences through ``plan`` back to back.

    Requests arrive at ``i * interarrival_s`` (0 = closed-loop burst).
    Devices and the PCIe link are shared FIFO resources across requests,
    so pipelining and queueing emerge from the timeline bookkeeping.
    """
    if n_requests <= 0:
        raise ExecutionError("n_requests must be positive")
    arrivals = [req * interarrival_s for req in range(n_requests)]
    replay = replay_plan(plan, machine, arrivals, rng=rng)
    latencies = tuple(
        done - arrival for arrival, done in zip(arrivals, replay.completions)
    )
    makespan = max(replay.completions)
    return StreamResult(
        latencies=latencies,
        makespan=makespan,
        throughput=n_requests / makespan if makespan > 0 else float("inf"),
    )
