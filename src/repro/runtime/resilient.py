"""Resilient execution: retries, deadlines, and device-loss failover.

A shim over the unified dispatch kernel (:mod:`repro.runtime.core`):
the worker-per-device architecture, retry loop, and failover logic all
live in the core as composable pieces — this module assembles them into
the recovery behaviour a serving engine needs when run time is not merely
"unpredictable" (paper §IV-C) but actively hostile:

* **per-task retry** (:class:`~repro.runtime.core.RetryMiddleware`) with
  exponential backoff and seeded jitter for transient faults (kernel soft
  errors, failed transfers, corrupted tensors caught by the NaN guard);
* **deadlines** — per task attempt
  (:class:`~repro.runtime.core.TaskDeadlineMiddleware`) and end-to-end —
  surfacing as :class:`~repro.errors.DeadlineExceededError`;
* **device-loss failover** (:class:`~repro.runtime.core.FailoverPolicy`):
  on a permanent :class:`~repro.errors.DeviceLostError` the dead device's
  remaining tasks migrate to the survivor (the NumPy kernels are
  numerically device-agnostic), or — when nothing has completed yet — the
  run restarts on the survivor's standing single-device degradation plan
  (the fallback modules :meth:`DuetEngine.optimize` already compiles,
  §VI-E).

Every recovery action lands in a structured event log on the returned
:class:`ExecutionReport`; terminal failures raise with the partial report
attached as ``exc.report`` so post-mortems keep the evidence.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.errors import ExecutionError
from repro.runtime.core import (
    DEVICES,
    CoreResult,
    DispatchKernel,
    ExecutionEvent,
    FailoverPolicy,
    RestartOnSurvivor,
    RetryMiddleware,
    TaskDeadlineMiddleware,
    ThreadedWorkers,
    plan_worker_devices,
)
from repro.runtime.plan import HeteroPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.faults import FaultInjector

__all__ = [
    "RetryPolicy",
    "ResilienceConfig",
    "ExecutionEvent",
    "ExecutionReport",
    "ResilientExecutor",
    "survivor_plan",
]

def survivor_plan(
    degradation_plans: Mapping[str, HeteroPlan],
    lost: "set[str] | frozenset[str]",
    devices: "tuple[str, ...] | None" = None,
) -> tuple[str, HeteroPlan] | None:
    """Pick a standing single-device plan that avoids every lost device.

    Serving lanes use this when a worker slot observes a
    :class:`~repro.errors.DeviceLostError`: the slot's session must be
    rebuilt onto a surviving device, and the degradation plans
    :meth:`DuetEngine.optimize` already compiled are exactly the
    candidates.  Returns ``(device, plan)`` for the first surviving
    device in preference order — ``devices`` when given, else the
    canonical :data:`~repro.runtime.core.DEVICES` pair followed by any
    other devices with standing plans, sorted (deterministic across
    runs) — or ``None`` when no survivor has a standing plan: the lane
    then has nothing to fail over to and must keep failing requests
    until a device is restored.
    """
    if devices is None:
        devices = DEVICES + tuple(sorted(set(degradation_plans) - set(DEVICES)))
    for device in devices:
        if device in lost:
            continue
        plan = degradation_plans.get(device)
        if plan is not None:
            return device, plan
    return None


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter for transient per-task faults.

    Attempt *n* (1-based) that fails sleeps
    ``backoff_base_s * backoff_multiplier**(n-1)``, scaled by a uniform
    jitter in ``[1-jitter, 1+jitter]`` drawn from the executor's seeded
    generator, before attempt *n+1*.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.001
    backoff_multiplier: float = 2.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ExecutionError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ExecutionError(f"jitter must be in [0, 1), got {self.jitter}")

    def backoff_s(self, attempt: int, rng: np.random.Generator) -> float:
        """Sleep before the retry following failed attempt ``attempt``."""
        delay = self.backoff_base_s * self.backoff_multiplier ** (attempt - 1)
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs of the resilient execution path.

    Attributes:
        retry: per-task retry/backoff policy for transient faults.
        task_deadline_s: budget for one task *attempt*; an attempt that
            overruns is treated as a (retryable) fault.
        deadline_s: end-to-end wall-clock budget for the whole inference.
        failover: allow migrating/restarting work off a lost device.
        validate_transfers: guard cross-device float tensors against
            non-finite corruption (poisoned transfers become retryable
            :class:`~repro.errors.TransferError` faults).
        seed: seeds the backoff-jitter generators, keeping chaos runs
            reproducible end to end.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    task_deadline_s: float | None = None
    deadline_s: float | None = None
    failover: bool = True
    validate_transfers: bool = True
    seed: int = 0


@dataclass
class ExecutionReport:
    """Outcome of one resilient execution, recovery actions included.

    Attributes:
        outputs: model outputs (``None`` when the run failed).
        wall_time_s: end-to-end wall-clock time.
        task_worker: task id -> device worker that *actually* ran it
            (after any migration).
        task_order: completion order of the executed plan.
        events: chronological structured log of faults and recovery.
        counters: aggregate counts (``faults``, ``retries``,
            ``giveups``, ``device_losses``, ``failovers``,
            ``migrated_tasks``, ``task_deadline_misses``).
        completed: whether the inference produced outputs.
        degraded_device: the surviving device after a failover, else
            ``None``; when set, subsequent requests should be served from
            the matching standing degradation plan.
        restarted: True when failover restarted on the degradation plan
            rather than migrating in place.
    """

    outputs: list[np.ndarray] | None
    wall_time_s: float
    task_worker: dict[str, str]
    task_order: list[str]
    events: list[ExecutionEvent]
    counters: dict[str, int]
    completed: bool
    degraded_device: str | None = None
    restarted: bool = False

    def events_of(self, kind: str) -> list[ExecutionEvent]:
        """All events of one kind, in order."""
        return [e for e in self.events if e.kind == kind]


_COUNTER_KEYS = (
    "faults",
    "retries",
    "giveups",
    "task_deadline_misses",
    "device_losses",
    "failovers",
    "migrated_tasks",
)


class ResilientExecutor:
    """Fault-tolerant execution of a :class:`HeteroPlan`.

    With a default config and no injected faults the behaviour — outputs,
    task placements, completion semantics — is identical to
    :class:`~repro.runtime.threaded.ThreadedExecutor`; the resilience
    machinery only activates when something actually goes wrong.

    Args:
        plan: the heterogeneous plan to execute.
        config: retry/deadline/failover knobs.
        fault_injector: optional deterministic chaos hooks.
        degradation_plans: device -> standing single-device plan, used to
            restart on the survivor when a device dies before any task
            completed (carried on
            :class:`~repro.core.engine.DuetOptimization`).
        join_timeout: seconds to wait for worker shutdown.
    """

    def __init__(
        self,
        plan: HeteroPlan,
        config: ResilienceConfig | None = None,
        fault_injector: "FaultInjector | None" = None,
        degradation_plans: Mapping[str, HeteroPlan] | None = None,
        join_timeout: float = 5.0,
    ):
        self.plan = plan
        self.config = config or ResilienceConfig()
        self.fault_injector = fault_injector
        self.degradation_plans = dict(degradation_plans or {})
        self.join_timeout = join_timeout

    # ------------------------------------------------------------------

    def run(self, inputs: Mapping[str, np.ndarray]) -> ExecutionReport:
        """Execute with recovery; raises on terminal failure.

        Terminal errors (retries exhausted, every device lost, end-to-end
        deadline) raise the matching :class:`~repro.errors.ExecutionError`
        subclass with the partial :class:`ExecutionReport` attached as
        ``exc.report``.
        """
        t0 = time.perf_counter()
        events: list[ExecutionEvent] = []
        counters = {key: 0 for key in _COUNTER_KEYS}
        try:
            return self._run_with_failover(inputs, t0, events, counters)
        except ExecutionError as exc:
            exc.report = ExecutionReport(
                outputs=None,
                wall_time_s=time.perf_counter() - t0,
                task_worker={},
                task_order=[],
                events=events,
                counters=counters,
                completed=False,
            )
            raise

    def _dispatch_kernel(
        self,
        plan: HeteroPlan,
        t0: float,
        events: list[ExecutionEvent],
        counters: dict[str, int],
        allow_restart: bool,
    ) -> DispatchKernel:
        """Assemble the core dispatch kernel for one plan attempt."""
        config = self.config

        def clock() -> float:
            return time.perf_counter() - t0

        # Fresh per-dispatch jitter generators, exactly as the standalone
        # executor seeded them (restarts reset the draw sequence); the
        # worker set — and hence the seed order — is the plan's (the
        # canonical pair for default-machine plans).
        devices = plan_worker_devices(plan)
        rngs = {
            dev: np.random.default_rng((config.seed, i))
            for i, dev in enumerate(devices)
        }
        middleware = [
            RetryMiddleware(config.retry, events, counters, rngs, clock)
        ]
        if config.task_deadline_s is not None:
            middleware.append(TaskDeadlineMiddleware(config.task_deadline_s))
        policy = FailoverPolicy(
            events,
            counters,
            failover=config.failover,
            restart_devices=set(self.degradation_plans),
            allow_restart=allow_restart,
            devices=devices,
        )
        return DispatchKernel(
            plan,
            workers=ThreadedWorkers(join_timeout=self.join_timeout),
            middleware=middleware,
            fault_injector=self.fault_injector,
            failure_policy=policy,
            deadline_s=config.deadline_s,
            validate_transfers=config.validate_transfers,
        )

    def _run_with_failover(
        self,
        inputs: Mapping[str, np.ndarray],
        t0: float,
        events: list[ExecutionEvent],
        counters: dict[str, int],
    ) -> ExecutionReport:
        degraded: str | None = None
        restarted = False
        try:
            result = self._dispatch_kernel(
                self.plan, t0, events, counters, allow_restart=True
            ).run(inputs, t0=t0)
            if self.fault_injector is not None:
                devices = plan_worker_devices(self.plan)
                survivors = [
                    dev
                    for dev in devices
                    if not self.fault_injector.device_is_lost(dev)
                ]
                # With exactly one survivor the engine should serve from
                # that device's standing plan; with >= 2 survivors the
                # mesh re-places in flight instead of degrading.
                if len(survivors) < len(devices) and len(survivors) == 1:
                    degraded = survivors[0]
        except RestartOnSurvivor as sig:
            counters["failovers"] += 1
            restarted = True
            degraded = sig.survivor
            events.append(
                ExecutionEvent(
                    kind="failover-restart",
                    time_s=time.perf_counter() - t0,
                    device=sig.survivor,
                    detail=(
                        f"restarting on {sig.survivor!r} single-device plan "
                        f"after: {sig.cause}"
                    ),
                )
            )
            result = self._dispatch_kernel(
                self.degradation_plans[sig.survivor],
                t0,
                events,
                counters,
                allow_restart=False,
            ).run(inputs, t0=t0)
        return self._report(result, t0, events, counters, degraded, restarted)

    def _report(
        self,
        result: CoreResult,
        t0: float,
        events: list[ExecutionEvent],
        counters: dict[str, int],
        degraded: str | None,
        restarted: bool,
    ) -> ExecutionReport:
        return ExecutionReport(
            outputs=result.outputs,
            wall_time_s=time.perf_counter() - t0,
            task_worker=result.task_worker,
            task_order=result.task_order,
            events=events,
            counters=counters,
            completed=True,
            degraded_device=degraded,
            restarted=restarted,
        )
