"""Resilient execution: retries, deadlines, and device-loss failover.

Wraps the threaded executor's worker-per-device architecture with the
recovery behaviour a serving engine needs when run time is not merely
"unpredictable" (paper §IV-C) but actively hostile:

* **per-task retry** with exponential backoff and seeded jitter for
  transient faults (kernel soft errors, failed transfers, corrupted
  tensors caught by the NaN guard);
* **deadlines** — per task attempt and end-to-end — surfacing as
  :class:`~repro.errors.DeadlineExceededError`;
* **device-loss failover**: on a permanent
  :class:`~repro.errors.DeviceLostError` the dead device's remaining
  tasks migrate to the survivor (the NumPy kernels are numerically
  device-agnostic), or — when nothing has completed yet — the run
  restarts on the survivor's standing single-device degradation plan
  (the fallback modules :meth:`DuetEngine.optimize` already compiles,
  §VI-E).

Every recovery action lands in a structured event log on the returned
:class:`ExecutionReport`; terminal failures raise with the partial report
attached as ``exc.report`` so post-mortems keep the evidence.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.errors import (
    DeadlineExceededError,
    DeviceLostError,
    ExecutionError,
    TransferError,
)
from repro.runtime.plan import HeteroPlan, TaskSpec
from repro.runtime.threaded import _State, gather_feeds, run_kernels

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.faults import FaultInjector

__all__ = [
    "RetryPolicy",
    "ResilienceConfig",
    "ExecutionEvent",
    "ExecutionReport",
    "ResilientExecutor",
]

_OTHER = {"cpu": "gpu", "gpu": "cpu"}


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter for transient per-task faults.

    Attempt *n* (1-based) that fails sleeps
    ``backoff_base_s * backoff_multiplier**(n-1)``, scaled by a uniform
    jitter in ``[1-jitter, 1+jitter]`` drawn from the executor's seeded
    generator, before attempt *n+1*.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.001
    backoff_multiplier: float = 2.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ExecutionError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ExecutionError(f"jitter must be in [0, 1), got {self.jitter}")

    def backoff_s(self, attempt: int, rng: np.random.Generator) -> float:
        """Sleep before the retry following failed attempt ``attempt``."""
        delay = self.backoff_base_s * self.backoff_multiplier ** (attempt - 1)
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs of the resilient execution path.

    Attributes:
        retry: per-task retry/backoff policy for transient faults.
        task_deadline_s: budget for one task *attempt*; an attempt that
            overruns is treated as a (retryable) fault.
        deadline_s: end-to-end wall-clock budget for the whole inference.
        failover: allow migrating/restarting work off a lost device.
        validate_transfers: guard cross-device float tensors against
            non-finite corruption (poisoned transfers become retryable
            :class:`~repro.errors.TransferError` faults).
        seed: seeds the backoff-jitter generators, keeping chaos runs
            reproducible end to end.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    task_deadline_s: float | None = None
    deadline_s: float | None = None
    failover: bool = True
    validate_transfers: bool = True
    seed: int = 0


@dataclass(frozen=True)
class ExecutionEvent:
    """One entry of the structured resilience event log.

    ``kind`` is one of ``"fault"``, ``"backoff"``, ``"retry"``,
    ``"giveup"``, ``"task-deadline"``, ``"deadline"``, ``"device-lost"``,
    ``"failover-migrate"``, ``"failover-restart"``.
    """

    kind: str
    time_s: float
    task_id: str | None = None
    device: str | None = None
    attempt: int | None = None
    detail: str = ""


@dataclass
class ExecutionReport:
    """Outcome of one resilient execution, recovery actions included.

    Attributes:
        outputs: model outputs (``None`` when the run failed).
        wall_time_s: end-to-end wall-clock time.
        task_worker: task id -> device worker that *actually* ran it
            (after any migration).
        task_order: completion order of the executed plan.
        events: chronological structured log of faults and recovery.
        counters: aggregate counts (``faults``, ``retries``,
            ``giveups``, ``device_losses``, ``failovers``,
            ``migrated_tasks``, ``task_deadline_misses``).
        completed: whether the inference produced outputs.
        degraded_device: the surviving device after a failover, else
            ``None``; when set, subsequent requests should be served from
            the matching standing degradation plan.
        restarted: True when failover restarted on the degradation plan
            rather than migrating in place.
    """

    outputs: list[np.ndarray] | None
    wall_time_s: float
    task_worker: dict[str, str]
    task_order: list[str]
    events: list[ExecutionEvent]
    counters: dict[str, int]
    completed: bool
    degraded_device: str | None = None
    restarted: bool = False

    def events_of(self, kind: str) -> list[ExecutionEvent]:
        """All events of one kind, in order."""
        return [e for e in self.events if e.kind == kind]


class _RestartOnSurvivor(Exception):
    """Internal: abandon the hetero run, rerun on the survivor's plan."""

    def __init__(self, survivor: str, cause: DeviceLostError):
        super().__init__(survivor)
        self.survivor = survivor
        self.cause = cause


class _AttemptDeadline(Exception):
    """Internal: one task attempt overran ``task_deadline_s``."""

    def __init__(self, elapsed: float, budget: float):
        super().__init__(f"attempt took {elapsed:.4f}s > budget {budget:.4f}s")
        self.elapsed = elapsed


_COUNTER_KEYS = (
    "faults",
    "retries",
    "giveups",
    "task_deadline_misses",
    "device_losses",
    "failovers",
    "migrated_tasks",
)


class ResilientExecutor:
    """Fault-tolerant execution of a :class:`HeteroPlan`.

    With a default config and no injected faults the behaviour — outputs,
    task placements, completion semantics — is identical to
    :class:`~repro.runtime.threaded.ThreadedExecutor`; the resilience
    machinery only activates when something actually goes wrong.

    Args:
        plan: the heterogeneous plan to execute.
        config: retry/deadline/failover knobs.
        fault_injector: optional deterministic chaos hooks.
        degradation_plans: device -> standing single-device plan, used to
            restart on the survivor when a device dies before any task
            completed (carried on
            :class:`~repro.core.engine.DuetOptimization`).
        join_timeout: seconds to wait for worker shutdown.
    """

    def __init__(
        self,
        plan: HeteroPlan,
        config: ResilienceConfig | None = None,
        fault_injector: "FaultInjector | None" = None,
        degradation_plans: Mapping[str, HeteroPlan] | None = None,
        join_timeout: float = 5.0,
    ):
        self.plan = plan
        self.config = config or ResilienceConfig()
        self.fault_injector = fault_injector
        self.degradation_plans = dict(degradation_plans or {})
        self.join_timeout = join_timeout

    # ------------------------------------------------------------------

    def run(self, inputs: Mapping[str, np.ndarray]) -> ExecutionReport:
        """Execute with recovery; raises on terminal failure.

        Terminal errors (retries exhausted, every device lost, end-to-end
        deadline) raise the matching :class:`~repro.errors.ExecutionError`
        subclass with the partial :class:`ExecutionReport` attached as
        ``exc.report``.
        """
        t0 = time.perf_counter()
        events: list[ExecutionEvent] = []
        counters = {key: 0 for key in _COUNTER_KEYS}
        try:
            return self._run_with_failover(inputs, t0, events, counters)
        except ExecutionError as exc:
            exc.report = ExecutionReport(
                outputs=None,
                wall_time_s=time.perf_counter() - t0,
                task_worker={},
                task_order=[],
                events=events,
                counters=counters,
                completed=False,
            )
            raise

    def _run_with_failover(
        self,
        inputs: Mapping[str, np.ndarray],
        t0: float,
        events: list[ExecutionEvent],
        counters: dict[str, int],
    ) -> ExecutionReport:
        degraded: str | None = None
        restarted = False
        try:
            state = self._run_plan(
                self.plan, inputs, t0, events, counters, allow_restart=True
            )
            plan = self.plan
            if self.fault_injector is not None:
                lost = [
                    dev
                    for dev in ("cpu", "gpu")
                    if self.fault_injector.device_is_lost(dev)
                ]
                if lost:
                    degraded = _OTHER[lost[0]]
        except _RestartOnSurvivor as sig:
            counters["failovers"] += 1
            restarted = True
            degraded = sig.survivor
            events.append(
                ExecutionEvent(
                    kind="failover-restart",
                    time_s=time.perf_counter() - t0,
                    device=sig.survivor,
                    detail=(
                        f"restarting on {sig.survivor!r} single-device plan "
                        f"after: {sig.cause}"
                    ),
                )
            )
            plan = self.degradation_plans[sig.survivor]
            state = self._run_plan(
                plan, inputs, t0, events, counters, allow_restart=False
            )
        return self._report(
            plan, state, t0, events, counters, degraded, restarted
        )

    def _report(
        self,
        plan: HeteroPlan,
        state: _State,
        t0: float,
        events: list[ExecutionEvent],
        counters: dict[str, int],
        degraded: str | None,
        restarted: bool,
    ) -> ExecutionReport:
        outputs = [state.values[(tid, idx)] for tid, idx in plan.outputs]
        return ExecutionReport(
            outputs=outputs,
            wall_time_s=time.perf_counter() - t0,
            task_worker=dict(state.task_worker),
            task_order=list(state.task_order),
            events=events,
            counters=counters,
            completed=True,
            degraded_device=degraded,
            restarted=restarted,
        )

    # ------------------------------------------------------------------

    def _run_plan(
        self,
        plan: HeteroPlan,
        inputs: Mapping[str, np.ndarray],
        t0: float,
        events: list[ExecutionEvent],
        counters: dict[str, int],
        allow_restart: bool,
    ) -> _State:
        config = self.config
        injector = self.fault_injector
        state = _State(plan)
        lost: set[str] = set()  # guarded by state.lock
        queues: dict[str, "queue.Queue[TaskSpec | None]"] = {
            "cpu": queue.Queue(),
            "gpu": queue.Queue(),
        }
        # Worker -> orchestrator notifications:
        #   ("ok", task, device) | ("fail", task, exc) | ("lost", task, exc)
        notify: "queue.Queue[tuple]" = queue.Queue()
        rngs = {
            dev: np.random.default_rng((config.seed, i))
            for i, dev in enumerate(("cpu", "gpu"))
        }

        def now() -> float:
            return time.perf_counter() - t0

        def route(device: str) -> str:
            return _OTHER[device] if device in lost else device

        def attempt(task: TaskSpec, device: str) -> None:
            began = time.perf_counter()
            if injector is not None:
                injector.on_task_start(task.task_id, device)
            crossed: set[str] = set()
            with state.lock:
                feeds = gather_feeds(
                    task, device, inputs, state.values, state.task_worker,
                    injector, crossed,
                )
            if config.validate_transfers:
                for input_id in crossed:
                    value = feeds[input_id]
                    if np.issubdtype(value.dtype, np.floating) and not np.all(
                        np.isfinite(value)
                    ):
                        raise TransferError(
                            f"non-finite tensor arrived for input "
                            f"{input_id!r} of task {task.task_id!r}"
                        )
            env = run_kernels(task, feeds)
            elapsed = time.perf_counter() - began
            if (
                config.task_deadline_s is not None
                and elapsed > config.task_deadline_s
            ):
                # Do NOT commit: a deadline-busting attempt is a failed
                # attempt, its results are discarded before retry.
                raise _AttemptDeadline(elapsed, config.task_deadline_s)
            with state.lock:
                for idx, out_id in enumerate(task.module.output_ids):
                    state.values[(task.task_id, idx)] = env[out_id]
                state.task_worker[task.task_id] = device
                state.task_order.append(task.task_id)
                ready = [
                    (dep, route(dep.device))
                    for dep in state.dependents[task.task_id]
                    if self._decrement(state, dep) == 0
                ]
            for dep, dest in ready:
                queues[dest].put(dep)

        def run_with_retries(task: TaskSpec, device: str) -> None:
            attempt_no = 0
            while True:
                attempt_no += 1
                try:
                    attempt(task, device)
                    notify.put(("ok", task, device))
                    return
                except DeviceLostError as exc:
                    notify.put(("lost", task, exc))
                    return
                except _AttemptDeadline as exc:
                    counters["task_deadline_misses"] += 1
                    kind, cause = "task-deadline", DeadlineExceededError(
                        f"task {task.task_id!r}: {exc}"
                    )
                except Exception as exc:  # transient fault: retryable
                    counters["faults"] += 1
                    kind, cause = "fault", exc
                events.append(
                    ExecutionEvent(
                        kind=kind,
                        time_s=now(),
                        task_id=task.task_id,
                        device=device,
                        attempt=attempt_no,
                        detail=str(cause),
                    )
                )
                if attempt_no >= config.retry.max_attempts:
                    counters["giveups"] += 1
                    events.append(
                        ExecutionEvent(
                            kind="giveup",
                            time_s=now(),
                            task_id=task.task_id,
                            device=device,
                            attempt=attempt_no,
                            detail=f"retries exhausted: {cause}",
                        )
                    )
                    notify.put(("fail", task, cause))
                    return
                delay = config.retry.backoff_s(attempt_no, rngs[device])
                counters["retries"] += 1
                events.append(
                    ExecutionEvent(
                        kind="backoff",
                        time_s=now(),
                        task_id=task.task_id,
                        device=device,
                        attempt=attempt_no,
                        detail=f"sleeping {delay:.6f}s",
                    )
                )
                time.sleep(delay)
                events.append(
                    ExecutionEvent(
                        kind="retry",
                        time_s=now(),
                        task_id=task.task_id,
                        device=device,
                        attempt=attempt_no + 1,
                    )
                )

        def worker(device: str) -> None:
            while True:
                task = queues[device].get()
                if task is None:
                    return
                run_with_retries(task, device)

        workers = {
            dev: threading.Thread(target=worker, args=(dev,), daemon=True)
            for dev in ("cpu", "gpu")
        }
        for t in workers.values():
            t.start()
        for task in plan.tasks:
            if state.remaining_deps[task.task_id] == 0:
                queues[task.device].put(task)

        n_tasks = len(plan.tasks)
        n_done = 0
        terminal: ExecutionError | None = None
        restart: _RestartOnSurvivor | None = None
        deadline_at = (
            t0 + config.deadline_s if config.deadline_s is not None else None
        )
        while n_done < n_tasks:
            timeout = None
            if deadline_at is not None:
                timeout = max(0.0, deadline_at - time.perf_counter())
            try:
                msg = notify.get(timeout=timeout)
            except queue.Empty:
                terminal = DeadlineExceededError(
                    f"inference exceeded end-to-end deadline of "
                    f"{config.deadline_s:.4f}s ({n_done}/{n_tasks} tasks done)"
                )
                events.append(
                    ExecutionEvent(
                        kind="deadline", time_s=now(), detail=str(terminal)
                    )
                )
                break
            kind = msg[0]
            if kind == "ok":
                n_done += 1
            elif kind == "fail":
                _, task, cause = msg
                terminal = ExecutionError(
                    f"task {task.task_id!r} failed after "
                    f"{config.retry.max_attempts} attempt(s): {cause}"
                )
                break
            else:  # device lost
                _, task, exc = msg
                dead = exc.device
                survivor = _OTHER[dead]
                with state.lock:
                    newly = dead not in lost
                    lost.add(dead)
                    survivor_dead = survivor in lost
                    completed_any = bool(state.task_order)
                if newly:
                    counters["device_losses"] += 1
                    events.append(
                        ExecutionEvent(
                            kind="device-lost",
                            time_s=now(),
                            task_id=task.task_id,
                            device=dead,
                            detail=str(exc),
                        )
                    )
                if survivor_dead:
                    terminal = ExecutionError(
                        f"all devices lost (last: {exc}); cannot fail over"
                    )
                    break
                if not config.failover:
                    terminal = exc
                    break
                if (
                    allow_restart
                    and not completed_any
                    and survivor in self.degradation_plans
                ):
                    restart = _RestartOnSurvivor(survivor, exc)
                    break
                if newly:
                    counters["failovers"] += 1
                    # Retarget the dead device's queued-but-unstarted work.
                    while True:
                        try:
                            moved = queues[dead].get_nowait()
                        except queue.Empty:
                            break
                        if moved is None:
                            continue
                        self._migrate(
                            moved, dead, survivor, queues, events, counters,
                            now,
                        )
                # The task whose attempt observed the loss migrates too.
                self._migrate(
                    task, dead, survivor, queues, events, counters, now
                )

        # Shutdown: drain, sentinel, join.
        for q in queues.values():
            while True:
                try:
                    q.get_nowait()
                except queue.Empty:
                    break
        for dev in queues:
            queues[dev].put(None)
        stuck = []
        for dev, t in workers.items():
            t.join(timeout=self.join_timeout)
            if t.is_alive():
                stuck.append(dev)
        if restart is not None:
            raise restart
        if terminal is not None:
            raise terminal
        if stuck:
            raise ExecutionError(
                f"worker thread(s) for device(s) {', '.join(stuck)} did not "
                f"finish within {self.join_timeout:.1f}s; a task is wedged"
            )
        return state

    @staticmethod
    def _decrement(state: _State, dep: TaskSpec) -> int:
        state.remaining_deps[dep.task_id] -= 1
        return state.remaining_deps[dep.task_id]

    def _migrate(
        self,
        task: TaskSpec,
        dead: str,
        survivor: str,
        queues: dict,
        events: list[ExecutionEvent],
        counters: dict[str, int],
        now,
    ) -> None:
        counters["migrated_tasks"] += 1
        events.append(
            ExecutionEvent(
                kind="failover-migrate",
                time_s=now(),
                task_id=task.task_id,
                device=survivor,
                detail=f"migrated off lost device {dead!r}",
            )
        )
        queues[survivor].put(task)
