"""Real-concurrency executor: per-device worker threads + sync queues.

The paper's executor (§IV-D) spawns one worker per device; each works a
busy loop — poll the synchronization queue, execute the subgraph, trigger
its dependents.  This module is a thin shim over the unified dispatch
kernel in :mod:`repro.runtime.core` (:class:`~repro.runtime.core.
DispatchKernel` with :class:`~repro.runtime.core.ThreadedWorkers` and the
abort-on-failure policy): actual Python threads and ``queue.Queue``
objects executing kernels numerically, so the dependency-triggering logic
is validated under true concurrency (NumPy releases the GIL inside its
kernels, so the two workers genuinely overlap).

Timing of *this* executor is host wall-clock (useful as a sanity signal);
the calibrated virtual-time results come from
:mod:`repro.runtime.simulator`.

A :class:`~repro.runtime.faults.FaultInjector` can be attached for
deterministic chaos tests: it is consulted at every task attempt and every
cross-device tensor hand-off.  This executor has *no* recovery — an
injected fault aborts the run exactly like a real one; the retrying,
failing-over path lives in :mod:`repro.runtime.resilient`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.runtime.core import (
    AbortPolicy,
    DispatchKernel,
    ThreadedWorkers,
    execute_kernels,
    resolve_feeds,
)
from repro.runtime.plan import HeteroPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.runtime.faults import FaultInjector

__all__ = ["ThreadedResult", "ThreadedExecutor", "gather_feeds", "run_kernels"]

# Backward-compatible names for the shared helpers, now owned by the core.
gather_feeds = resolve_feeds
run_kernels = execute_kernels


@dataclass
class ThreadedResult:
    """Outcome of a threaded execution."""

    outputs: list[np.ndarray]
    wall_time_s: float
    task_worker: dict[str, str]  # task id -> device worker that ran it
    task_order: list[str]  # completion order


class ThreadedExecutor:
    """Executes a :class:`HeteroPlan` with one worker thread per device.

    Args:
        plan: the heterogeneous plan to execute.
        join_timeout: seconds to wait for each worker to shut down.  A
            worker still alive after this raises
            :class:`~repro.errors.ExecutionError` naming the stuck device
            rather than silently returning a half-populated result.
        fault_injector: optional deterministic chaos hooks
            (:class:`~repro.runtime.faults.FaultInjector`); injected
            faults abort the run like real ones.
        overlap: enable the double-buffered transfer stage — cross-device
            feeds are staged on a dedicated transfer worker while the
            device workers compute.  Outputs are bit-identical either way.
    """

    def __init__(
        self,
        plan: HeteroPlan,
        join_timeout: float = 5.0,
        fault_injector: "FaultInjector | None" = None,
        overlap: bool = False,
    ):
        self.plan = plan
        self.join_timeout = join_timeout
        self.fault_injector = fault_injector
        self.overlap = overlap

    def run(self, inputs: Mapping[str, np.ndarray]) -> ThreadedResult:
        """Execute the plan numerically; blocks until all tasks finish."""
        kernel = DispatchKernel(
            self.plan,
            workers=ThreadedWorkers(join_timeout=self.join_timeout),
            fault_injector=self.fault_injector,
            failure_policy=AbortPolicy(),
            overlap=self.overlap,
        )
        result = kernel.run(inputs)
        return ThreadedResult(
            outputs=result.outputs,
            wall_time_s=result.wall_time_s,
            task_worker=result.task_worker,
            task_order=result.task_order,
        )
