"""Real-concurrency executor: per-device worker threads + sync queues.

The paper's executor (§IV-D) spawns one worker per device; each works a
busy loop — poll the synchronization queue, execute the subgraph, trigger
its dependents.  This module implements that design with actual Python
threads and ``queue.Queue`` objects and executes kernels numerically, so
the dependency-triggering logic is validated under true concurrency (NumPy
releases the GIL inside its kernels, so the two workers genuinely overlap).

Timing of *this* executor is host wall-clock (useful as a sanity signal);
the calibrated virtual-time results come from
:mod:`repro.runtime.simulator`.

A :class:`~repro.runtime.faults.FaultInjector` can be attached for
deterministic chaos tests: it is consulted at every task attempt and every
cross-device tensor hand-off.  This executor has *no* recovery — an
injected fault aborts the run exactly like a real one; the retrying,
failing-over path lives in :mod:`repro.runtime.resilient`.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.errors import ExecutionError
from repro.runtime.plan import HeteroPlan, TaskSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.runtime.faults import FaultInjector

__all__ = ["ThreadedResult", "ThreadedExecutor", "gather_feeds", "run_kernels"]


@dataclass
class ThreadedResult:
    """Outcome of a threaded execution."""

    outputs: list[np.ndarray]
    wall_time_s: float
    task_worker: dict[str, str]  # task id -> device worker that ran it
    task_order: list[str]  # completion order


def gather_feeds(
    task: TaskSpec,
    worker_device: str,
    inputs: Mapping[str, np.ndarray],
    values: Mapping[tuple[str, int], np.ndarray],
    producer_device: Mapping[str, str],
    injector: "FaultInjector | None" = None,
    crossed: set[str] | None = None,
) -> dict[str, np.ndarray]:
    """Resolve a task's input tensors (caller must hold the state lock).

    Tensors crossing devices — external inputs consumed off-host, or task
    outputs produced on the other worker — pass through the fault
    injector's transfer hook, which may corrupt them or raise
    :class:`~repro.errors.TransferError`.  When ``crossed`` is given, the
    input ids that crossed devices are added to it (the resilient
    executor's corruption guard validates exactly those).
    """
    feeds: dict[str, np.ndarray] = {}
    for input_id, src in task.sources.items():
        if src.kind == "external":
            if src.ref not in inputs:
                raise ExecutionError(f"missing external input {src.ref!r}")
            value = np.asarray(inputs[src.ref])
            produced_on = "cpu"  # model inputs are host-resident
        else:
            value = values[(src.ref, src.output_index)]
            produced_on = producer_device.get(src.ref, worker_device)
        if produced_on != worker_device:
            if crossed is not None:
                crossed.add(input_id)
            if injector is not None:
                value = injector.on_transfer(src.ref, worker_device, value)
        feeds[input_id] = value
    return feeds


def run_kernels(task: TaskSpec, feeds: Mapping[str, np.ndarray]) -> dict:
    """Execute a task's kernels numerically; returns the value environment."""
    env = dict(task.module.params)
    env.update(feeds)
    for kernel in task.module.kernels:
        env[kernel.output_id] = kernel([env[i] for i in kernel.input_ids])
    return env


class _State:
    """Shared executor state guarded by a single lock."""

    def __init__(self, plan: HeteroPlan):
        self.lock = threading.Lock()
        self.values: dict[tuple[str, int], np.ndarray] = {}
        self.remaining_deps: dict[str, int] = {}
        self.dependents: dict[str, list[TaskSpec]] = {t.task_id: [] for t in plan.tasks}
        self.task_worker: dict[str, str] = {}
        self.task_order: list[str] = []
        self.errors: list[BaseException] = []
        for task in plan.tasks:
            deps = {
                src.ref
                for src in task.sources.values()
                if src.kind == "task"
            }
            self.remaining_deps[task.task_id] = len(deps)
            for dep in deps:
                self.dependents[dep].append(task)


def _format_failures(errors: list[BaseException], extra: str = "") -> str:
    """One message naming every worker failure, first cause leading."""
    head = f"threaded execution failed: {errors[0]}{extra}"
    if len(errors) == 1:
        return head
    others = "; ".join(f"{type(e).__name__}: {e}" for e in errors[1:])
    return (
        f"{head} (+{len(errors) - 1} additional worker failure(s): {others})"
    )


class ThreadedExecutor:
    """Executes a :class:`HeteroPlan` with one worker thread per device.

    Args:
        plan: the heterogeneous plan to execute.
        join_timeout: seconds to wait for each worker to shut down.  A
            worker still alive after this raises :class:`ExecutionError`
            naming the stuck device rather than silently returning a
            half-populated result.
        fault_injector: optional deterministic chaos hooks
            (:class:`~repro.runtime.faults.FaultInjector`); injected
            faults abort the run like real ones.
    """

    def __init__(
        self,
        plan: HeteroPlan,
        join_timeout: float = 5.0,
        fault_injector: "FaultInjector | None" = None,
    ):
        self.plan = plan
        self.join_timeout = join_timeout
        self.fault_injector = fault_injector

    def run(self, inputs: Mapping[str, np.ndarray]) -> ThreadedResult:
        """Execute the plan numerically; blocks until all tasks finish."""
        state = _State(self.plan)
        injector = self.fault_injector
        queues: dict[str, "queue.Queue[TaskSpec | None]"] = {
            "cpu": queue.Queue(),
            "gpu": queue.Queue(),
        }
        n_tasks = len(self.plan.tasks)
        done = threading.Semaphore(0)

        def execute(task: TaskSpec) -> None:
            if injector is not None:
                injector.on_task_start(task.task_id, task.device)
            with state.lock:
                feeds = gather_feeds(
                    task,
                    task.device,
                    inputs,
                    state.values,
                    state.task_worker,
                    injector,
                )
            # The heavy part runs OUTSIDE the lock — this is where the two
            # workers overlap.
            env = run_kernels(task, feeds)
            with state.lock:
                for idx, out_id in enumerate(task.module.output_ids):
                    state.values[(task.task_id, idx)] = env[out_id]
                state.task_worker[task.task_id] = task.device
                state.task_order.append(task.task_id)
                ready = []
                for dep in state.dependents[task.task_id]:
                    state.remaining_deps[dep.task_id] -= 1
                    if state.remaining_deps[dep.task_id] == 0:
                        ready.append(dep)
            for dep in ready:
                queues[dep.device].put(dep)

        def worker(device: str) -> None:
            while True:
                task = queues[device].get()
                if task is None:
                    return
                try:
                    execute(task)
                except BaseException as exc:  # propagate to the caller
                    with state.lock:
                        state.errors.append(exc)
                finally:
                    done.release()

        workers = {
            dev: threading.Thread(target=worker, args=(dev,), daemon=True)
            for dev in ("cpu", "gpu")
        }
        start = time.perf_counter()
        for t in workers.values():
            t.start()
        # Seed the queues with dependency-free tasks.
        for task in self.plan.tasks:
            if state.remaining_deps[task.task_id] == 0:
                queues[task.device].put(task)
        failed = False
        for _ in range(n_tasks):
            done.acquire()
            with state.lock:
                failed = bool(state.errors)
            if failed:
                break
        if failed:
            # A failed task's dependents were never queued and never will
            # be; drain already-queued-but-unstarted work so the workers
            # reach their shutdown sentinel instead of burning through it.
            for q in queues.values():
                while True:
                    try:
                        q.get_nowait()
                    except queue.Empty:
                        break
        for dev in queues:
            queues[dev].put(None)
        stuck = []
        for dev, t in workers.items():
            t.join(timeout=self.join_timeout)
            if t.is_alive():
                stuck.append(dev)
        wall = time.perf_counter() - start

        if state.errors:
            detail = (
                f" (worker(s) {', '.join(stuck)} still wedged after "
                f"{self.join_timeout:.1f}s)"
                if stuck
                else ""
            )
            raise ExecutionError(
                _format_failures(state.errors, detail)
            ) from state.errors[0]
        if stuck:
            raise ExecutionError(
                f"worker thread(s) for device(s) {', '.join(stuck)} did not "
                f"finish within {self.join_timeout:.1f}s; a task is wedged"
            )
        outputs = [
            state.values[(tid, idx)] for tid, idx in self.plan.outputs
        ]
        return ThreadedResult(
            outputs=outputs,
            wall_time_s=wall,
            task_worker=dict(state.task_worker),
            task_order=list(state.task_order),
        )
