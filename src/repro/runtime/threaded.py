"""Real-concurrency executor: per-device worker threads + sync queues.

The paper's executor (§IV-D) spawns one worker per device; each works a
busy loop — poll the synchronization queue, execute the subgraph, trigger
its dependents.  This module implements that design with actual Python
threads and ``queue.Queue`` objects and executes kernels numerically, so
the dependency-triggering logic is validated under true concurrency (NumPy
releases the GIL inside its kernels, so the two workers genuinely overlap).

Timing of *this* executor is host wall-clock (useful as a sanity signal);
the calibrated virtual-time results come from
:mod:`repro.runtime.simulator`.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.errors import ExecutionError
from repro.runtime.plan import HeteroPlan, TaskSpec

__all__ = ["ThreadedResult", "ThreadedExecutor"]


@dataclass
class ThreadedResult:
    """Outcome of a threaded execution."""

    outputs: list[np.ndarray]
    wall_time_s: float
    task_worker: dict[str, str]  # task id -> device worker that ran it
    task_order: list[str]  # completion order


class _State:
    """Shared executor state guarded by a single lock."""

    def __init__(self, plan: HeteroPlan):
        self.lock = threading.Lock()
        self.values: dict[tuple[str, int], np.ndarray] = {}
        self.remaining_deps: dict[str, int] = {}
        self.dependents: dict[str, list[TaskSpec]] = {t.task_id: [] for t in plan.tasks}
        self.task_worker: dict[str, str] = {}
        self.task_order: list[str] = []
        self.error: BaseException | None = None
        for task in plan.tasks:
            deps = {
                src.ref
                for src in task.sources.values()
                if src.kind == "task"
            }
            self.remaining_deps[task.task_id] = len(deps)
            for dep in deps:
                self.dependents[dep].append(task)


class ThreadedExecutor:
    """Executes a :class:`HeteroPlan` with one worker thread per device.

    Args:
        plan: the heterogeneous plan to execute.
        join_timeout: seconds to wait for each worker to shut down.  A
            worker still alive after this raises :class:`ExecutionError`
            naming the stuck device rather than silently returning a
            half-populated result.
    """

    def __init__(self, plan: HeteroPlan, join_timeout: float = 5.0):
        self.plan = plan
        self.join_timeout = join_timeout

    def run(self, inputs: Mapping[str, np.ndarray]) -> ThreadedResult:
        """Execute the plan numerically; blocks until all tasks finish."""
        state = _State(self.plan)
        queues: dict[str, "queue.Queue[TaskSpec | None]"] = {
            "cpu": queue.Queue(),
            "gpu": queue.Queue(),
        }
        n_tasks = len(self.plan.tasks)
        done = threading.Semaphore(0)

        def execute(task: TaskSpec) -> None:
            feeds: dict[str, np.ndarray] = {}
            with state.lock:
                for input_id, src in task.sources.items():
                    if src.kind == "external":
                        if src.ref not in inputs:
                            raise ExecutionError(
                                f"missing external input {src.ref!r}"
                            )
                        feeds[input_id] = np.asarray(inputs[src.ref])
                    else:
                        feeds[input_id] = state.values[(src.ref, src.output_index)]
            env = dict(task.module.params)
            env.update(feeds)
            # The heavy part runs OUTSIDE the lock — this is where the two
            # workers overlap.
            for kernel in task.module.kernels:
                env[kernel.output_id] = kernel([env[i] for i in kernel.input_ids])
            with state.lock:
                for idx, out_id in enumerate(task.module.output_ids):
                    state.values[(task.task_id, idx)] = env[out_id]
                state.task_worker[task.task_id] = task.device
                state.task_order.append(task.task_id)
                ready = []
                for dep in state.dependents[task.task_id]:
                    state.remaining_deps[dep.task_id] -= 1
                    if state.remaining_deps[dep.task_id] == 0:
                        ready.append(dep)
            for dep in ready:
                queues[dep.device].put(dep)

        def worker(device: str) -> None:
            while True:
                task = queues[device].get()
                if task is None:
                    return
                try:
                    execute(task)
                except BaseException as exc:  # propagate to the caller
                    with state.lock:
                        if state.error is None:
                            state.error = exc
                finally:
                    done.release()

        workers = {
            dev: threading.Thread(target=worker, args=(dev,), daemon=True)
            for dev in ("cpu", "gpu")
        }
        start = time.perf_counter()
        for t in workers.values():
            t.start()
        # Seed the queues with dependency-free tasks.
        for task in self.plan.tasks:
            if state.remaining_deps[task.task_id] == 0:
                queues[task.device].put(task)
        for _ in range(n_tasks):
            done.acquire()
            if state.error is not None:
                break
        if state.error is not None:
            # A failed task's dependents were never queued and never will
            # be; drain already-queued-but-unstarted work so the workers
            # reach their shutdown sentinel instead of burning through it.
            for q in queues.values():
                while True:
                    try:
                        q.get_nowait()
                    except queue.Empty:
                        break
        for dev in queues:
            queues[dev].put(None)
        stuck = []
        for dev, t in workers.items():
            t.join(timeout=self.join_timeout)
            if t.is_alive():
                stuck.append(dev)
        wall = time.perf_counter() - start

        if state.error is not None:
            detail = (
                f" (worker(s) {', '.join(stuck)} still wedged after "
                f"{self.join_timeout:.1f}s)"
                if stuck
                else ""
            )
            raise ExecutionError(
                f"threaded execution failed: {state.error}{detail}"
            ) from state.error
        if stuck:
            raise ExecutionError(
                f"worker thread(s) for device(s) {', '.join(stuck)} did not "
                f"finish within {self.join_timeout:.1f}s; a task is wedged"
            )
        outputs = [
            state.values[(tid, idx)] for tid, idx in self.plan.outputs
        ]
        return ThreadedResult(
            outputs=outputs,
            wall_time_s=wall,
            task_worker=dict(state.task_worker),
            task_order=list(state.task_order),
        )
