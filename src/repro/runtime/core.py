"""Unified runtime core: one dispatch kernel behind every executor.

The paper's executor (§IV-D) is a single concept — device workers draining
a dependency-ordered task queue, with tensors crossing devices between
them.  This module implements that concept exactly once and lets every
public execution path be a thin parameterization of it:

* :class:`DispatchKernel` — the dispatch loop itself: task readiness
  tracking (:class:`DispatchState`), cross-device transfer resolution
  (:func:`resolve_feeds`), kernel execution (:func:`execute_kernels`),
  output collection, and shutdown/join bookkeeping.
* **Worker strategies** — :class:`ThreadedWorkers` runs one named daemon
  thread per device (``duet-worker-<device>``) with synchronization
  queues, exactly the paper's busy-loop workers; :class:`InlineWorkers`
  executes tasks sequentially on the calling thread in plan (priority)
  order — the strategy behind single-device runs, the simulator's
  numeric replay, and :class:`~repro.runtime.session.EngineSession`.
* **Policy middleware** — small objects wrapping one task *attempt*
  (``middleware(ctx, call_next)``), composed outermost-first:
  :class:`RetryMiddleware` (backoff + seeded jitter),
  :class:`TaskDeadlineMiddleware`, :class:`TracingMiddleware` (structured
  :class:`ExecutionEvent` stream), :class:`FaultInjectionMiddleware`
  (deterministic chaos hooks), :class:`TransferGuardMiddleware`
  (non-finite corruption detection on cross-device tensors), and
  :class:`InvariantMiddleware` (``REPRO_VALIDATE``-style output
  shape/dtype checks).
* **Failure policies** — :class:`AbortPolicy` reproduces the plain
  threaded executor's semantics (collect every worker failure, drain,
  raise); :class:`FailoverPolicy` reproduces the resilient executor's
  device-loss handling (migrate queued work to the survivor, or signal a
  restart on a standing degradation plan).

The public executors (:class:`~repro.runtime.threaded.ThreadedExecutor`,
:class:`~repro.runtime.resilient.ResilientExecutor`,
:func:`~repro.runtime.single.run_single_device`, and the numeric replay
half of :func:`~repro.runtime.simulator.simulate`) are shims over this
module; their observable behaviour — outputs, placements, event logs,
error messages — is unchanged.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

import numpy as np

from repro.errors import (
    DeadlineExceededError,
    DeviceLostError,
    ExecutionError,
    InvariantViolation,
    TransferError,
)
from repro.runtime.plan import HeteroPlan, TaskSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guards for type hints
    from repro.runtime.faults import FaultInjector
    from repro.runtime.memory import TensorArena

__all__ = [
    "DEVICES",
    "OTHER_DEVICE",
    "plan_worker_devices",
    "ExecutionEvent",
    "TaskContext",
    "DispatchState",
    "CoreResult",
    "resolve_feeds",
    "execute_kernels",
    "build_attempt_stack",
    "InlineWorkers",
    "ThreadedWorkers",
    "AbortPolicy",
    "FailoverPolicy",
    "RestartOnSurvivor",
    "RetryMiddleware",
    "TaskDeadlineMiddleware",
    "TracingMiddleware",
    "MetricsMiddleware",
    "FaultInjectionMiddleware",
    "TransferGuardMiddleware",
    "InvariantMiddleware",
    "DispatchKernel",
    "PhaseCheckpoint",
]

#: The default machine's device workers: any plan placed entirely on
#: these devices is dispatched across exactly this pair, preserving the
#: historical worker set (and thread names) even for single-device plans.
DEVICES = ("cpu", "gpu")

#: The failover partner of each default-machine device.
OTHER_DEVICE = {"cpu": "gpu", "gpu": "cpu"}


def plan_worker_devices(plan: HeteroPlan) -> tuple[str, ...]:
    """The worker device set a plan is dispatched across.

    Plans placed entirely on the default machine keep the canonical
    ``("cpu", "gpu")`` pair; mesh plans get one worker per device the
    plan actually uses, canonical devices first then the rest sorted.
    """
    devs = {t.device for t in plan.tasks}
    if devs <= set(DEVICES):
        return DEVICES
    known = tuple(d for d in DEVICES if d in devs)
    return known + tuple(sorted(devs - set(DEVICES)))


@dataclass(frozen=True)
class ExecutionEvent:
    """One entry of the structured runtime event log.

    Shared by the tracing middleware and the resilience event log.
    ``kind`` is one of ``"task-start"``, ``"task-finish"``,
    ``"task-error"`` (tracing); ``"fault"``, ``"backoff"``, ``"retry"``,
    ``"giveup"``, ``"task-deadline"`` (retry middleware); ``"deadline"``,
    ``"device-lost"``, ``"failover-migrate"``, ``"failover-restart"``
    (failover policy).
    """

    kind: str
    time_s: float
    task_id: str | None = None
    device: str | None = None
    attempt: int | None = None
    detail: str = ""


@dataclass
class TaskContext:
    """Mutable per-attempt context threaded through the middleware stack.

    Attributes:
        task: the task being executed.
        device: the worker actually executing it (may differ from
            ``task.device`` after a failover migration).
        attempt: 1-based attempt number (maintained by the retry
            middleware; 1 when no retry middleware is installed).
        feeds: resolved input tensors (set by the resolve stage).
        crossed: input ids whose tensors crossed devices this attempt.
        env: the kernel value environment after execution.
    """

    task: TaskSpec
    device: str
    attempt: int = 1
    feeds: dict[str, np.ndarray] | None = None
    crossed: set[str] = field(default_factory=set)
    env: dict[str, np.ndarray] | None = None


class DispatchState:
    """Shared readiness/completion state of one dispatch, behind one lock.

    Tracks remaining dependency counts, the dependents to trigger on each
    completion, produced values, actual task→worker placements,
    completion order, lost devices, and worker-side errors.
    """

    def __init__(self, plan: HeteroPlan, template: "_DependencyTemplate | None" = None):
        self.lock = threading.Lock()
        self.values: dict[tuple[str, int], np.ndarray] = {}
        self.task_worker: dict[str, str] = {}
        self.task_order: list[str] = []
        self.errors: list[BaseException] = []
        self.lost: set[str] = set()
        # task id -> (device, feeds, crossed ids) staged by the transfer
        # worker of an overlap-enabled dispatch, consumed by attempt 1.
        self.prefetched: dict[str, tuple[str, dict, set]] = {}
        template = template or _DependencyTemplate(plan)
        self.remaining_deps = dict(template.remaining_deps)
        self.dependents = template.dependents


class _DependencyTemplate:
    """Precomputed dependency structure of a plan, shared across runs.

    :class:`~repro.runtime.session.EngineSession` reuses one template for
    every request instead of re-walking the plan's edges per call.
    """

    def __init__(self, plan: HeteroPlan):
        self.remaining_deps: dict[str, int] = {}
        self.dependents: dict[str, list[TaskSpec]] = {
            t.task_id: [] for t in plan.tasks
        }
        for task in plan.tasks:
            deps = {
                src.ref for src in task.sources.values() if src.kind == "task"
            }
            self.remaining_deps[task.task_id] = len(deps)
            for dep in deps:
                self.dependents[dep].append(task)


@dataclass
class CoreResult:
    """Outcome of one dispatch through the unified core."""

    outputs: list[np.ndarray]
    wall_time_s: float
    task_worker: dict[str, str]  # task id -> device worker that ran it
    task_order: list[str]  # completion order


@dataclass
class PhaseCheckpoint:
    """A preempted inline dispatch, frozen at a plan phase boundary.

    Returned by :meth:`DispatchKernel.run_preemptible` when the
    ``should_preempt`` predicate fired between two tasks with different
    ``phase_index``.  The checkpoint owns private *copies* of every
    committed value — arena-backed dispatches share buffers across
    requests, so anything the interrupting request executes through the
    same kernel would otherwise clobber the suspended frontier.  Because
    the copies are exact and feed resolution at resume reads them
    verbatim, a resumed run is bit-identical to an uninterrupted one.

    Attributes:
        state: the dispatch state as of the completed-phase frontier
            (values detached from the arena).
        next_index: index into ``plan.tasks`` of the first unexecuted
            task.
        inputs: the request's external feeds (resume reuses them).
        phase_index: the last *completed* phase.
        elapsed_s: active execution wall time accumulated so far
            (suspension time is not counted).
        preemptions: how many times this run has been suspended.
    """

    state: DispatchState
    next_index: int
    inputs: Mapping[str, np.ndarray]
    phase_index: int
    elapsed_s: float
    preemptions: int


# ----------------------------------------------------------------------
# Transfer resolution and kernel execution (shared by every path)


def resolve_feeds(
    task: TaskSpec,
    worker_device: str,
    inputs: Mapping[str, np.ndarray],
    values: Mapping[tuple[str, int], np.ndarray],
    producer_device: Mapping[str, str],
    injector: "FaultInjector | None" = None,
    crossed: set[str] | None = None,
) -> dict[str, np.ndarray]:
    """Resolve a task's input tensors (caller must hold the state lock).

    Tensors crossing devices — external inputs consumed off-host, or task
    outputs produced on the other worker — pass through the fault
    injector's transfer hook, which may corrupt them or raise
    :class:`~repro.errors.TransferError`.  When ``crossed`` is given, the
    input ids that crossed devices are added to it (the transfer-guard
    middleware validates exactly those).
    """
    feeds: dict[str, np.ndarray] = {}
    for input_id, src in task.sources.items():
        if src.kind == "external":
            if src.ref not in inputs:
                raise ExecutionError(f"missing external input {src.ref!r}")
            value = np.asarray(inputs[src.ref])
            produced_on = "cpu"  # model inputs are host-resident
        else:
            value = values[(src.ref, src.output_index)]
            produced_on = producer_device.get(src.ref, worker_device)
        if produced_on != worker_device:
            if crossed is not None:
                crossed.add(input_id)
            if injector is not None:
                value = injector.on_transfer(src.ref, worker_device, value)
        feeds[input_id] = value
    return feeds


def execute_kernels(
    task: TaskSpec,
    feeds: Mapping[str, np.ndarray],
    arena: "TensorArena | None" = None,
) -> dict:
    """Execute a task's kernels numerically; returns the value environment.

    With an ``arena``, every kernel output lands in a preallocated
    per-slot buffer so repeated runs reuse stable storage instead of
    allocating fresh arrays (values are bit-identical either way).
    Native kernels write straight into the arena slot via ``run_into``
    — no intermediate allocation, no copy; NumPy closures compute then
    copy in, as before.
    """
    env = dict(task.module.params)
    env.update(feeds)
    if arena is None:
        for kernel in task.module.kernels:
            env[kernel.output_id] = kernel([env[i] for i in kernel.input_ids])
    else:
        tid = task.task_id
        for kernel in task.module.kernels:
            args = [env[i] for i in kernel.input_ids]
            key = (tid, kernel.output_id)
            if kernel.run_into is not None:
                buf = arena.buffer(key, *_slot_spec(task, kernel))
                env[kernel.output_id] = kernel.run_into(args, buf)
            else:
                env[kernel.output_id] = arena.store(key, kernel(args))
    return env


def _slot_spec(task: TaskSpec, kernel) -> tuple[tuple[int, ...], np.dtype]:
    ty = task.module.graph.node(kernel.output_id).ty
    return tuple(ty.shape), ty.dtype.to_numpy()


# ----------------------------------------------------------------------
# Middleware


Middleware = Callable[[TaskContext, Callable[[TaskContext], None]], None]


def build_attempt_stack(
    middleware: Sequence[Middleware],
    base: Callable[[TaskContext], None],
) -> Callable[[TaskContext], None]:
    """Compose a middleware stack around a base attempt, outermost first."""
    fn = base
    for mw in reversed(middleware):
        fn = _bind(mw, fn)
    return fn


def _bind(mw: Middleware, nxt: Callable[[TaskContext], None]):
    def call(ctx: TaskContext) -> None:
        mw(ctx, nxt)

    return call


class _AttemptDeadline(Exception):
    """Internal: one task attempt overran its per-attempt budget."""

    def __init__(self, elapsed: float, budget: float):
        super().__init__(f"attempt took {elapsed:.4f}s > budget {budget:.4f}s")
        self.elapsed = elapsed


class _GiveUp(Exception):
    """Internal: the retry middleware exhausted its attempts."""

    def __init__(self, cause: BaseException, attempts: int):
        super().__init__(str(cause))
        self.cause = cause
        self.attempts = attempts


class FaultInjectionMiddleware:
    """Consults a :class:`~repro.runtime.faults.FaultInjector` as each
    attempt starts: injected stalls sleep, kernel faults raise
    :class:`~repro.errors.TransientKernelError`, and dispatches onto a
    lost device raise :class:`~repro.errors.DeviceLostError`."""

    def __init__(self, injector: "FaultInjector"):
        self.injector = injector

    def __call__(self, ctx: TaskContext, call_next) -> None:
        self.injector.on_task_start(ctx.task.task_id, ctx.device)
        call_next(ctx)


class TransferGuardMiddleware:
    """Validates cross-device float tensors against non-finite corruption.

    Runs after feed resolution, before kernels: a poisoned transfer
    becomes a retryable :class:`~repro.errors.TransferError` instead of
    silently wrong outputs.
    """

    def __call__(self, ctx: TaskContext, call_next) -> None:
        for input_id in ctx.crossed:
            value = ctx.feeds[input_id]
            if np.issubdtype(value.dtype, np.floating) and not np.all(
                np.isfinite(value)
            ):
                raise TransferError(
                    f"non-finite tensor arrived for input "
                    f"{input_id!r} of task {ctx.task.task_id!r}"
                )
        call_next(ctx)


class TaskDeadlineMiddleware:
    """Bounds one task *attempt* to ``budget_s`` wall-clock seconds.

    An attempt that overruns raises before commit, so its results are
    discarded; under the retry middleware the overrun is a retryable
    fault (surfacing as a ``"task-deadline"`` event).
    """

    def __init__(self, budget_s: float):
        self.budget_s = budget_s

    def __call__(self, ctx: TaskContext, call_next) -> None:
        began = time.perf_counter()
        call_next(ctx)
        elapsed = time.perf_counter() - began
        if elapsed > self.budget_s:
            raise _AttemptDeadline(elapsed, self.budget_s)


class TracingMiddleware:
    """Structured tracing hook: emits ``task-start`` / ``task-finish`` /
    ``task-error`` :class:`ExecutionEvent` records to a sink callable.

    The sink receives each event as it happens (e.g. ``events.append``);
    ``clock`` maps to seconds since the run started.
    """

    def __init__(
        self,
        sink: Callable[[ExecutionEvent], None],
        clock: Callable[[], float] | None = None,
    ):
        self.sink = sink
        self._t0 = time.perf_counter()
        self.clock = clock or (lambda: time.perf_counter() - self._t0)

    def __call__(self, ctx: TaskContext, call_next) -> None:
        task_id, device = ctx.task.task_id, ctx.device
        self.sink(
            ExecutionEvent(
                kind="task-start",
                time_s=self.clock(),
                task_id=task_id,
                device=device,
                attempt=ctx.attempt,
            )
        )
        try:
            call_next(ctx)
        except BaseException as exc:  # re-raised: tracing observes, never handles
            self.sink(
                ExecutionEvent(
                    kind="task-error",
                    time_s=self.clock(),
                    task_id=task_id,
                    device=device,
                    attempt=ctx.attempt,
                    detail=f"{type(exc).__name__}: {exc}",
                )
            )
            raise
        self.sink(
            ExecutionEvent(
                kind="task-finish",
                time_s=self.clock(),
                task_id=task_id,
                device=device,
                attempt=ctx.attempt,
            )
        )


class MetricsMiddleware:
    """Populates a metrics registry with per-attempt runtime observations.

    Feeds the serving layer's :class:`~repro.serving.MetricsRegistry`
    (duck-typed: anything exposing ``counter(name, help).inc(...)``
    works, so this module needs no import of :mod:`repro.serving`) with:

    * ``duet_device_busy_seconds_total{device=...}`` — wall-clock seconds
      each device worker spent executing task attempts;
    * ``duet_task_attempts_total{device=...}`` — attempts started;
    * ``duet_task_errors_total{device=...}`` — attempts that raised.

    Extra ``labels`` (e.g. ``model=...``) are attached to every sample.
    Place it *inside* any retry middleware so each attempt is observed.
    """

    def __init__(
        self,
        registry,
        labels: Mapping[str, str] | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self.labels = dict(labels or {})
        self.clock = clock
        self.busy = registry.counter(
            "duet_device_busy_seconds_total",
            help="Wall-clock seconds spent executing task attempts, by device.",
        )
        self.attempts = registry.counter(
            "duet_task_attempts_total",
            help="Task execution attempts started, by device.",
        )
        self.task_errors = registry.counter(
            "duet_task_errors_total",
            help="Task execution attempts that raised, by device.",
        )

    def __call__(self, ctx: TaskContext, call_next) -> None:
        self.attempts.inc(1, device=ctx.device, **self.labels)
        began = self.clock()
        try:
            call_next(ctx)
        except BaseException:
            self.busy.inc(
                max(0.0, self.clock() - began), device=ctx.device, **self.labels
            )
            self.task_errors.inc(1, device=ctx.device, **self.labels)
            raise
        self.busy.inc(
            max(0.0, self.clock() - began), device=ctx.device, **self.labels
        )


class InvariantMiddleware:
    """Runtime invariant validation (the ``REPRO_VALIDATE`` hook).

    After each task executes, every declared output must exist in the
    value environment with exactly the shape and dtype its graph node
    declares; violations raise
    :class:`~repro.errors.InvariantViolation` listing every mismatch.
    """

    def __call__(self, ctx: TaskContext, call_next) -> None:
        call_next(ctx)
        violations: list[str] = []
        graph = ctx.task.module.graph
        for out_id in ctx.task.module.output_ids:
            value = ctx.env.get(out_id) if ctx.env is not None else None
            if value is None:
                violations.append(
                    f"task {ctx.task.task_id!r}: output {out_id!r} was never "
                    "produced"
                )
                continue
            ty = graph.node(out_id).ty
            if tuple(value.shape) != tuple(ty.shape):
                violations.append(
                    f"task {ctx.task.task_id!r}: output {out_id!r} has shape "
                    f"{tuple(value.shape)}, declared {tuple(ty.shape)}"
                )
            if value.dtype != ty.dtype.to_numpy():
                violations.append(
                    f"task {ctx.task.task_id!r}: output {out_id!r} has dtype "
                    f"{value.dtype}, declared {ty.dtype.to_numpy()}"
                )
        if violations:
            raise InvariantViolation(violations)


class RetryMiddleware:
    """Per-task retry with exponential backoff and seeded jitter.

    Retryable faults are the :class:`~repro.errors.ExecutionError`
    hierarchy (transient kernel errors, transfer failures, corruption
    caught by the guard) plus per-attempt deadline overruns;
    :class:`~repro.errors.DeviceLostError` is never retried on the same
    device, and non-runtime exceptions (a genuine bug in a kernel) fail
    immediately instead of burning retries.

    Emits ``fault`` / ``backoff`` / ``retry`` / ``giveup`` /
    ``task-deadline`` events to ``events`` and bumps ``counters``.
    """

    def __init__(
        self,
        policy,  # RetryPolicy (typed loosely to avoid an import cycle)
        events: list[ExecutionEvent],
        counters: dict[str, int],
        rngs: Mapping[str, np.random.Generator],
        clock: Callable[[], float],
    ):
        self.policy = policy
        self.events = events
        self.counters = counters
        self.rngs = rngs
        self.clock = clock

    def __call__(self, ctx: TaskContext, call_next) -> None:
        task_id = ctx.task.task_id
        attempt_no = 0
        while True:
            attempt_no += 1
            ctx.attempt = attempt_no
            try:
                call_next(ctx)
                return
            except DeviceLostError:
                raise  # permanent: the failure policy handles it
            except _AttemptDeadline as exc:
                self.counters["task_deadline_misses"] += 1
                kind, cause = "task-deadline", DeadlineExceededError(
                    f"task {task_id!r}: {exc}"
                )
            except ExecutionError as exc:  # transient fault: retryable
                self.counters["faults"] += 1
                kind, cause = "fault", exc
            self.events.append(
                ExecutionEvent(
                    kind=kind,
                    time_s=self.clock(),
                    task_id=task_id,
                    device=ctx.device,
                    attempt=attempt_no,
                    detail=str(cause),
                )
            )
            if attempt_no >= self.policy.max_attempts:
                self.counters["giveups"] += 1
                self.events.append(
                    ExecutionEvent(
                        kind="giveup",
                        time_s=self.clock(),
                        task_id=task_id,
                        device=ctx.device,
                        attempt=attempt_no,
                        detail=f"retries exhausted: {cause}",
                    )
                )
                raise _GiveUp(cause, attempt_no) from cause
            delay = self.policy.backoff_s(attempt_no, self.rngs[ctx.device])
            self.counters["retries"] += 1
            self.events.append(
                ExecutionEvent(
                    kind="backoff",
                    time_s=self.clock(),
                    task_id=task_id,
                    device=ctx.device,
                    attempt=attempt_no,
                    detail=f"sleeping {delay:.6f}s",
                )
            )
            time.sleep(delay)
            self.events.append(
                ExecutionEvent(
                    kind="retry",
                    time_s=self.clock(),
                    task_id=task_id,
                    device=ctx.device,
                    attempt=attempt_no + 1,
                )
            )


# ----------------------------------------------------------------------
# Worker strategies


@dataclass(frozen=True)
class InlineWorkers:
    """Sequential worker strategy: tasks run on the calling thread in plan
    (priority) order.  No threads, no queues — the strategy behind
    single-device execution, the simulator's numeric replay, and
    :class:`~repro.runtime.session.EngineSession`."""


@dataclass(frozen=True)
class ThreadedWorkers:
    """One named daemon worker thread per device with sync queues
    (``duet-worker-cpu`` / ``duet-worker-gpu``), the paper's §IV-D
    executor architecture.

    Attributes:
        join_timeout: seconds to wait for each worker at shutdown before
            declaring it wedged.
    """

    join_timeout: float = 5.0


# ----------------------------------------------------------------------
# Failure policies


@dataclass
class _Message:
    """Worker -> orchestrator completion notification."""

    kind: str  # "ok" | "fail" | "lost"
    task: TaskSpec
    exc: BaseException | None = None
    attempts: int | None = None


class _Controller:
    """What a failure policy may do to the dispatch while handling a
    failure: inspect/requeue work, mark devices lost, read the clock."""

    def __init__(self, kernel: "DispatchKernel", state: DispatchState, queues, clock):
        self.kernel = kernel
        self.state = state
        self.queues = queues
        self.clock = clock

    def drain(self, device: str) -> list[TaskSpec]:
        """Pull all queued-but-unstarted tasks off one device queue."""
        moved = []
        while True:
            try:
                task = self.queues[device].get_nowait()
            except queue.Empty:
                break
            if task is not None:
                moved.append(task)
        return moved

    def requeue(self, task: TaskSpec, device: str) -> None:
        self.queues[device].put(task)


class AbortPolicy:
    """Plain-threaded failure semantics: any failure aborts the run;
    every worker failure collected before shutdown lands in one
    :class:`~repro.errors.ExecutionError` message, chained to the first
    cause."""

    def on_failure(self, msg: _Message, control: _Controller):
        """Abort on the first failure; errors are raised in :meth:`finish`."""
        return ("abort", None)

    def finish(
        self, state: DispatchState, stuck: list[str], join_timeout: float
    ) -> None:
        """Raise the collected failure(s), naming any wedged workers."""
        if state.errors:
            detail = (
                f" (worker(s) {', '.join(stuck)} still wedged after "
                f"{join_timeout:.1f}s)"
                if stuck
                else ""
            )
            raise ExecutionError(
                _format_failures(state.errors, detail)
            ) from state.errors[0]
        if stuck:
            raise ExecutionError(
                f"worker thread(s) for device(s) {', '.join(stuck)} did not "
                f"finish within {join_timeout:.1f}s; a task is wedged"
            )


class RestartOnSurvivor(Exception):
    """Signal: abandon the hetero run, rerun on the survivor's standing
    single-device degradation plan.

    Raised out of :meth:`DispatchKernel.run` (after a clean worker
    shutdown) for the caller — the resilient shim — to catch and act on.

    Attributes:
        survivor: the still-healthy device.
        cause: the :class:`~repro.errors.DeviceLostError` that triggered
            the restart.
    """

    def __init__(self, survivor: str, cause: DeviceLostError):
        super().__init__(survivor)
        self.survivor = survivor
        self.cause = cause


class FailoverPolicy:
    """Resilient failure semantics: retries already happened in the
    middleware; terminal task failures abort with a structured message,
    and device losses fail remaining work over to the survivors — by
    migrating queued tasks in place (round-robin across survivors in
    worker order), or by signalling a restart on a standing
    single-device degradation plan when exactly one device survives and
    nothing has completed yet."""

    def __init__(
        self,
        events: list[ExecutionEvent],
        counters: dict[str, int],
        failover: bool = True,
        restart_devices: frozenset[str] | set[str] = frozenset(),
        allow_restart: bool = True,
        devices: Sequence[str] = DEVICES,
    ):
        self.events = events
        self.counters = counters
        self.failover = failover
        self.restart_devices = set(restart_devices)
        self.allow_restart = allow_restart
        self.devices = tuple(devices)
        self._next_survivor = 0

    def on_failure(self, msg: _Message, control: _Controller):
        """Handle one failure message; returns an orchestrator action."""
        if msg.kind == "fail":
            if msg.attempts is not None:
                terminal = ExecutionError(
                    f"task {msg.task.task_id!r} failed after "
                    f"{msg.attempts} attempt(s): {msg.exc}"
                )
            else:  # non-retryable (outside the ExecutionError hierarchy)
                terminal = ExecutionError(
                    f"task {msg.task.task_id!r} failed: {msg.exc}"
                )
            return ("abort", terminal)
        # Device loss.
        state = control.state
        exc = msg.exc
        dead = exc.device
        with state.lock:
            newly = dead not in state.lost
            state.lost.add(dead)
            survivors = [d for d in self.devices if d not in state.lost]
            completed_any = bool(state.task_order)
        if newly:
            self.counters["device_losses"] += 1
            self.events.append(
                ExecutionEvent(
                    kind="device-lost",
                    time_s=control.clock(),
                    task_id=msg.task.task_id,
                    device=dead,
                    detail=str(exc),
                )
            )
        if not survivors:
            return (
                "abort",
                ExecutionError(
                    f"all devices lost (last: {exc}); cannot fail over"
                ),
            )
        if not self.failover:
            return ("abort", exc)
        if (
            self.allow_restart
            and not completed_any
            and len(survivors) == 1
            and survivors[0] in self.restart_devices
        ):
            return ("restart", RestartOnSurvivor(survivors[0], exc))
        if newly:
            self.counters["failovers"] += 1
            # Retarget the dead device's queued-but-unstarted work.
            for moved in control.drain(dead):
                self._migrate(moved, dead, self._pick(survivors), control)
        # The task whose attempt observed the loss migrates too.
        self._migrate(msg.task, dead, self._pick(survivors), control)
        return None  # continue

    def _pick(self, survivors: list[str]) -> str:
        """Deterministic round-robin over survivors in worker order (with
        one survivor — the whole 2-device machine — always that one)."""
        dest = survivors[self._next_survivor % len(survivors)]
        self._next_survivor += 1
        return dest

    def _migrate(
        self, task: TaskSpec, dead: str, survivor: str, control: _Controller
    ) -> None:
        self.counters["migrated_tasks"] += 1
        self.events.append(
            ExecutionEvent(
                kind="failover-migrate",
                time_s=control.clock(),
                task_id=task.task_id,
                device=survivor,
                detail=f"migrated off lost device {dead!r}",
            )
        )
        control.requeue(task, survivor)

    def on_deadline(
        self, deadline_s: float, n_done: int, n_tasks: int, clock
    ) -> ExecutionError:
        """Build (and log) the end-to-end deadline terminal error."""
        terminal = DeadlineExceededError(
            f"inference exceeded end-to-end deadline of "
            f"{deadline_s:.4f}s ({n_done}/{n_tasks} tasks done)"
        )
        self.events.append(
            ExecutionEvent(kind="deadline", time_s=clock(), detail=str(terminal))
        )
        return terminal

    def finish(
        self, state: DispatchState, stuck: list[str], join_timeout: float
    ) -> None:
        """Raise when a worker wedged (terminal errors already raised)."""
        if stuck:
            raise ExecutionError(
                f"worker thread(s) for device(s) {', '.join(stuck)} did not "
                f"finish within {join_timeout:.1f}s; a task is wedged"
            )


def _format_failures(errors: list[BaseException], extra: str = "") -> str:
    """One message naming every worker failure, first cause leading."""
    head = f"threaded execution failed: {errors[0]}{extra}"
    if len(errors) == 1:
        return head
    others = "; ".join(f"{type(e).__name__}: {e}" for e in errors[1:])
    return (
        f"{head} (+{len(errors) - 1} additional worker failure(s): {others})"
    )


# ----------------------------------------------------------------------
# The dispatch kernel


class DispatchKernel:
    """The one executor: readiness tracking, worker dispatch, transfer
    resolution, and output collection for a :class:`HeteroPlan`.

    Args:
        plan: the heterogeneous plan to execute.
        workers: :class:`InlineWorkers` (sequential, calling thread) or
            :class:`ThreadedWorkers` (one named worker thread per device).
        middleware: policy middleware wrapping each task attempt,
            outermost first (retry, deadlines, tracing, validation...).
        fault_injector: optional deterministic chaos hooks, consulted at
            every attempt start and every cross-device tensor hand-off.
        failure_policy: what a worker failure does to the run
            (:class:`AbortPolicy` by default; :class:`FailoverPolicy`
            for resilient semantics).  Inline dispatch propagates
            exceptions directly and ignores the policy.
        arena: optional :class:`~repro.runtime.memory.TensorArena`; when
            given, kernel outputs land in preallocated reusable buffers.
        deadline_s: optional end-to-end wall-clock budget (threaded
            strategy only), enforced by the orchestrator.
        validate_transfers: install the non-finite transfer guard after
            feed resolution.
        overlap: double-buffer cross-device transfers (threaded strategy
            only): ready tasks with cross-device inputs detour through a
            dedicated transfer worker (``duet-worker-transfer``) that
            resolves their feeds while the device workers keep computing,
            so the copy of task *k+1*'s inputs overlaps task *k*'s
            kernels.  Feeds are resolved from exactly the same committed
            values either way, so outputs are bit-identical; with a fault
            injector the prefetch is bypassed (transfers must be observed
            by the attempt that consumes them, at attempt time).
    """

    def __init__(
        self,
        plan: HeteroPlan,
        *,
        workers: InlineWorkers | ThreadedWorkers | None = None,
        middleware: Sequence[Middleware] = (),
        fault_injector: "FaultInjector | None" = None,
        failure_policy=None,
        arena: "TensorArena | None" = None,
        deadline_s: float | None = None,
        validate_transfers: bool = False,
        overlap: bool = False,
    ):
        self.plan = plan
        self.workers = workers or ThreadedWorkers()
        self.middleware = list(middleware)
        self.fault_injector = fault_injector
        self.failure_policy = failure_policy or AbortPolicy()
        self.arena = arena
        self.deadline_s = deadline_s
        self.validate_transfers = validate_transfers
        self.overlap = overlap
        self.devices = plan_worker_devices(plan)
        self.template = _DependencyTemplate(plan)

    # ------------------------------------------------------------------

    def run(
        self,
        inputs: Mapping[str, np.ndarray],
        t0: float | None = None,
    ) -> CoreResult:
        """Execute the plan numerically; blocks until all tasks finish.

        ``t0`` anchors the run's clock (events/deadlines are relative to
        it); it defaults to "now" and is supplied by callers that span
        several dispatches (the resilient restart path).
        """
        t0 = time.perf_counter() if t0 is None else t0
        state = DispatchState(self.plan, self.template)
        if isinstance(self.workers, InlineWorkers):
            return self._run_inline(state, inputs, t0)
        return self._run_threaded(state, inputs, t0)

    # ------------------------------------------------------------------

    def _attempt_stack(self, state: DispatchState, inputs):
        """Compose the per-attempt pipeline for one run."""
        injector = self.fault_injector

        def resolve_stage(ctx: TaskContext, call_next) -> None:
            ctx.crossed = set()
            with state.lock:
                staged = state.prefetched.pop(ctx.task.task_id, None)
                if (
                    staged is not None
                    and ctx.attempt == 1
                    and staged[0] == ctx.device
                ):
                    # The transfer worker already resolved these feeds from
                    # the same committed values; retries re-resolve.
                    _, ctx.feeds, ctx.crossed = staged
                else:
                    ctx.feeds = resolve_feeds(
                        ctx.task,
                        ctx.device,
                        inputs,
                        state.values,
                        state.task_worker,
                        injector,
                        ctx.crossed,
                    )
            call_next(ctx)

        def kernel_stage(ctx: TaskContext) -> None:
            ctx.env = execute_kernels(ctx.task, ctx.feeds, self.arena)

        stages: list[Middleware] = list(self.middleware)
        if injector is not None:
            stages.append(FaultInjectionMiddleware(injector))
        stages.append(resolve_stage)
        if self.validate_transfers:
            stages.append(TransferGuardMiddleware())
        return build_attempt_stack(stages, kernel_stage)

    def _commit(self, state: DispatchState, ctx: TaskContext):
        """Publish a finished task's outputs; returns newly-ready work as
        ``(task, destination device)`` pairs (lost devices rerouted)."""
        task = ctx.task
        with state.lock:
            for idx, out_id in enumerate(task.module.output_ids):
                state.values[(task.task_id, idx)] = ctx.env[out_id]
            state.task_worker[task.task_id] = ctx.device
            state.task_order.append(task.task_id)
            ready = []
            for dep in state.dependents[task.task_id]:
                state.remaining_deps[dep.task_id] -= 1
                if state.remaining_deps[dep.task_id] == 0:
                    dest = dep.device
                    if dest in state.lost:
                        dest = next(
                            (d for d in self.devices if d not in state.lost),
                            dest,
                        )
                    ready.append((dep, dest))
        return ready

    def _collect(self, state: DispatchState, t0: float) -> CoreResult:
        outputs = [state.values[(tid, idx)] for tid, idx in self.plan.outputs]
        return CoreResult(
            outputs=outputs,
            wall_time_s=time.perf_counter() - t0,
            task_worker=dict(state.task_worker),
            task_order=list(state.task_order),
        )

    # ------------------------------------------------------------------

    def _run_inline(self, state, inputs, t0) -> CoreResult:
        attempt = self._attempt_stack(state, inputs)
        for task in self.plan.tasks:  # plan order is topological
            ctx = TaskContext(task=task, device=task.device)
            try:
                attempt(ctx)
            except _GiveUp as exc:
                raise ExecutionError(
                    f"task {task.task_id!r} failed after "
                    f"{exc.attempts} attempt(s): {exc.cause}"
                ) from exc.cause
            self._commit(state, ctx)
        return self._collect(state, t0)

    def run_preemptible(
        self,
        inputs: Mapping[str, np.ndarray] | None = None,
        should_preempt: Callable[[], bool] | None = None,
        checkpoint: PhaseCheckpoint | None = None,
    ) -> CoreResult | PhaseCheckpoint:
        """Inline execution with suspension points at phase boundaries.

        Runs the plan like :meth:`run` (inline workers only), but before
        executing the first task of each *new* phase consults
        ``should_preempt()``; when it returns True the dispatch is
        frozen into a :class:`PhaseCheckpoint` and returned instead of a
        result.  Pass the checkpoint back (``checkpoint=...``) to resume
        from the completed-phase frontier; inputs are carried inside it.
        Each segment executes at least one task, so a pathological
        always-preempt predicate still terminates in at most
        ``len(plan.tasks)`` resumptions.

        The resumed run is bit-identical to an uninterrupted one: the
        checkpoint detaches every committed value from the arena (exact
        copies), and feed resolution consumes those copies verbatim —
        interleaved requests through the same kernel/arena cannot
        perturb it.  ``CoreResult.wall_time_s`` accumulates only active
        segments, never suspended time.

        Raises :class:`~repro.errors.ExecutionError` when driven with a
        threaded worker strategy (preemption points are defined by the
        sequential plan order).
        """
        if not isinstance(self.workers, InlineWorkers):
            raise ExecutionError(
                "run_preemptible requires InlineWorkers; threaded "
                "dispatch has no sequential phase boundaries to suspend at"
            )
        if checkpoint is None:
            if inputs is None:
                raise ExecutionError(
                    "run_preemptible needs inputs when starting fresh"
                )
            state = DispatchState(self.plan, self.template)
            start, elapsed, preemptions = 0, 0.0, 0
        else:
            state = checkpoint.state
            start = checkpoint.next_index
            inputs = checkpoint.inputs
            elapsed = checkpoint.elapsed_s
            preemptions = checkpoint.preemptions
        t0 = time.perf_counter()
        attempt = self._attempt_stack(state, inputs)
        tasks = self.plan.tasks  # plan order is topological
        for i in range(start, len(tasks)):
            task = tasks[i]
            if (
                should_preempt is not None
                and i > start  # guarantee progress within each segment
                and task.phase_index != tasks[i - 1].phase_index
                and should_preempt()
            ):
                with state.lock:
                    # Detach the frontier from the arena: an interloper
                    # dispatched through this kernel while we are
                    # suspended reuses (and clobbers) the same buffers.
                    state.values = {
                        key: np.copy(value)
                        for key, value in state.values.items()
                    }
                return PhaseCheckpoint(
                    state=state,
                    next_index=i,
                    inputs=inputs,
                    phase_index=tasks[i - 1].phase_index,
                    elapsed_s=elapsed + (time.perf_counter() - t0),
                    preemptions=preemptions + 1,
                )
            ctx = TaskContext(task=task, device=task.device)
            try:
                attempt(ctx)
            except _GiveUp as exc:
                raise ExecutionError(
                    f"task {task.task_id!r} failed after "
                    f"{exc.attempts} attempt(s): {exc.cause}"
                ) from exc.cause
            self._commit(state, ctx)
        outputs = [state.values[(tid, idx)] for tid, idx in self.plan.outputs]
        return CoreResult(
            outputs=outputs,
            wall_time_s=elapsed + (time.perf_counter() - t0),
            task_worker=dict(state.task_worker),
            task_order=list(state.task_order),
        )

    def _crosses_devices(self, state: DispatchState, task: TaskSpec, dest: str) -> bool:
        """Does ``task`` consume any tensor produced off ``dest``?"""
        with state.lock:
            for src in task.sources.values():
                if src.kind == "external":
                    if dest != "cpu":  # model inputs are host-resident
                        return True
                elif state.task_worker.get(src.ref, dest) != dest:
                    return True
        return False

    def _run_threaded(self, state, inputs, t0) -> CoreResult:
        attempt = self._attempt_stack(state, inputs)
        policy = self.failure_policy
        queues: dict[str, "queue.Queue[TaskSpec | None]"] = {
            dev: queue.Queue() for dev in self.devices
        }
        notify: "queue.Queue[_Message]" = queue.Queue()
        # Double-buffered transfer stage: ready tasks with cross-device
        # inputs detour through this queue so their feeds are staged while
        # the device workers keep computing.  With a fault injector the
        # stage is bypassed — injected transfer faults must hit the
        # consuming attempt itself, not an early prefetch.
        xfer_queue: "queue.Queue[tuple[TaskSpec, str] | None] | None" = (
            queue.Queue()
            if self.overlap and self.fault_injector is None
            else None
        )

        def clock() -> float:
            return time.perf_counter() - t0

        control = _Controller(self, state, queues, clock)

        def route(task: TaskSpec, dest: str) -> None:
            if xfer_queue is not None and self._crosses_devices(state, task, dest):
                xfer_queue.put((task, dest))
            else:
                queues[dest].put(task)

        def xfer_worker() -> None:
            while True:
                item = xfer_queue.get()
                if item is None:
                    return
                task, dest = item
                try:
                    crossed: set[str] = set()
                    with state.lock:
                        feeds = resolve_feeds(
                            task, dest, inputs, state.values,
                            state.task_worker, None, crossed,
                        )
                        state.prefetched[task.task_id] = (dest, feeds, crossed)
                except BaseException:
                    # Stage nothing; the compute attempt re-resolves and
                    # surfaces the failure through the normal path.
                    pass
                queues[dest].put(task)

        def process(task: TaskSpec, device: str) -> None:
            ctx = TaskContext(task=task, device=device)
            try:
                attempt(ctx)
            except DeviceLostError as exc:
                with state.lock:
                    state.errors.append(exc)
                notify.put(_Message("lost", task, exc))
                return
            except _GiveUp as exc:
                with state.lock:
                    state.errors.append(exc.cause)
                notify.put(_Message("fail", task, exc.cause, exc.attempts))
                return
            except BaseException as exc:
                # Broad by design: arbitrary kernel exceptions must
                # propagate to the caller, not kill the worker silently.
                with state.lock:
                    state.errors.append(exc)
                notify.put(_Message("fail", task, exc))
                return
            for dep, dest in self._commit(state, ctx):
                route(dep, dest)
            notify.put(_Message("ok", task))

        def worker(device: str) -> None:
            while True:
                task = queues[device].get()
                if task is None:
                    return
                process(task, device)

        workers = {
            dev: threading.Thread(
                target=worker,
                args=(dev,),
                name=f"duet-worker-{dev}",
                daemon=True,
            )
            for dev in self.devices
        }
        for t in workers.values():
            t.start()
        xfer_thread: threading.Thread | None = None
        if xfer_queue is not None:
            xfer_thread = threading.Thread(
                target=xfer_worker, name="duet-worker-transfer", daemon=True
            )
            xfer_thread.start()
        # Seed the queues with dependency-free tasks.
        for task in self.plan.tasks:
            if state.remaining_deps[task.task_id] == 0:
                route(task, task.device)

        n_tasks = len(self.plan.tasks)
        n_done = 0
        terminal: BaseException | None = None
        restart: RestartOnSurvivor | None = None
        deadline_at = t0 + self.deadline_s if self.deadline_s is not None else None
        while n_done < n_tasks:
            timeout = None
            if deadline_at is not None:
                timeout = max(0.0, deadline_at - time.perf_counter())
            try:
                msg = notify.get(timeout=timeout)
            except queue.Empty:
                terminal = policy.on_deadline(
                    self.deadline_s, n_done, n_tasks, clock
                )
                break
            if msg.kind == "ok":
                n_done += 1
                continue
            action = policy.on_failure(msg, control)
            if action is None:
                continue
            what, payload = action
            if what == "restart":
                restart = payload
            else:
                terminal = payload
            break

        # Shutdown: drain, sentinel, join.  The transfer stage goes first
        # so it cannot re-fill a compute queue after its drain.
        join_timeout = self.workers.join_timeout
        stuck = []
        if xfer_queue is not None:
            while True:
                try:
                    xfer_queue.get_nowait()
                except queue.Empty:
                    break
            xfer_queue.put(None)
            xfer_thread.join(timeout=join_timeout)
            if xfer_thread.is_alive():
                stuck.append("transfer")
        for q in queues.values():
            while True:
                try:
                    q.get_nowait()
                except queue.Empty:
                    break
        for dev in queues:
            queues[dev].put(None)
        for dev, t in workers.items():
            t.join(timeout=join_timeout)
            if t.is_alive():
                stuck.append(dev)

        if restart is not None:
            raise restart
        if terminal is not None:
            raise terminal
        policy.finish(state, stuck, join_timeout)
        return self._collect(state, t0)
