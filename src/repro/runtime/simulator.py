"""Discrete-event simulation of heterogeneous plan execution.

Implements the executor semantics of paper §IV-D on a virtual clock:

* one worker per device, executing its assigned subgraphs one at a time in
  plan-priority order (footnote 2: subgraphs on a device run sequentially);
* a tensor consumed on the device that produced it is free; crossing the
  PCIe link costs ``base_latency + bytes/bandwidth``, the link is a shared,
  serialized resource, and repeated consumers of the same tensor on the
  same device reuse one transfer;
* model inputs start host-resident: GPU tasks pay host→device transfers
  for them, and outputs produced on the GPU pay a device→host transfer
  before the inference counts as complete.

Two modes: ``mean`` (deterministic cost-model times — what the scheduler's
``measure_latency`` uses) and ``sample`` (per-kernel/per-transfer noise —
what the tail-latency experiments use).  Optionally the kernels' NumPy
closures actually execute, so correctness tests can compare heterogeneous
execution bit-for-bit against the reference interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.devices.machine import Machine
from repro.errors import ExecutionError
from repro.runtime.core import execute_kernels, resolve_feeds
from repro.runtime.overlap import replay_plan
from repro.runtime.plan import HeteroPlan, Source, TaskSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.faults import FaultInjector

__all__ = [
    "KernelRecord",
    "TaskRecord",
    "TransferRecord",
    "ExecutionResult",
    "simulate",
    "simulate_batch",
]


@dataclass(frozen=True)
class KernelRecord:
    """Timing of one kernel inside a task."""

    name: str
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass(frozen=True)
class TaskRecord:
    """Timing of one executed task."""

    task_id: str
    device: str
    start: float
    finish: float
    kernels: tuple[KernelRecord, ...] = ()

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass(frozen=True)
class TransferRecord:
    """One PCIe transfer."""

    what: str  # e.g. "task:rnn_branch[0]" or "external:image"
    dest_device: str
    n_bytes: float
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass
class ExecutionResult:
    """Outcome of one simulated inference."""

    latency: float
    tasks: list[TaskRecord]
    transfers: list[TransferRecord]
    outputs: list[np.ndarray] | None = None

    def task_record(self, task_id: str) -> TaskRecord:
        for rec in self.tasks:
            if rec.task_id == task_id:
                return rec
        raise ExecutionError(f"no record for task {task_id!r}")

    @property
    def total_transfer_bytes(self) -> float:
        return sum(t.n_bytes for t in self.transfers)


def _pair(a: str, b: str) -> tuple[str, str]:
    """Canonical key of the (undirected) link between two devices."""
    return (a, b) if a <= b else (b, a)


class _LinkTimeline:
    """The mesh's serialized links with a transfer cache.

    Each device pair is one serialized FIFO resource with its own free
    cursor; on the default 2-device machine there is exactly one pair, so
    this degenerates to the historical single PCIe timeline (same event
    order, same noise draws).
    """

    def __init__(self, machine: Machine, rng: np.random.Generator | None):
        self._machine = machine
        self._rng = rng
        self._free_at: dict[tuple[str, str], float] = {}
        # (source key, device) -> arrival time of the tensor on that device
        self._arrivals: dict[tuple[tuple, str], float] = {}
        self.records: list[TransferRecord] = []

    def arrival(
        self,
        key: tuple,
        label: str,
        produced_at: float,
        produced_on: str,
        dest: str,
        n_bytes: float,
    ) -> float:
        """When the tensor becomes visible on ``dest`` (scheduling the
        transfer if needed)."""
        if produced_on == dest:
            return produced_at
        cached = self._arrivals.get((key, dest))
        if cached is not None:
            return cached
        link = self._machine.link(produced_on, dest)
        if self._rng is None:
            duration = link.transfer_time(n_bytes)
        else:
            duration = link.sample_transfer_time(n_bytes, self._rng)
        pair = _pair(produced_on, dest)
        start = max(self._free_at.get(pair, 0.0), produced_at)
        finish = start + duration
        self._free_at[pair] = finish
        self._arrivals[(key, dest)] = finish
        self.records.append(
            TransferRecord(
                what=label, dest_device=dest, n_bytes=n_bytes, start=start,
                finish=finish,
            )
        )
        return finish


def _task_output_entry(
    task: TaskSpec, index: int
) -> tuple[str, float]:
    """(node id, size in bytes) of a task output."""
    try:
        out_id = task.module.output_ids[index]
    except IndexError as exc:
        raise ExecutionError(
            f"task {task.task_id!r} has no output index {index}"
        ) from exc
    return out_id, float(task.module.graph.node(out_id).ty.size_bytes)


def simulate(
    plan: HeteroPlan,
    machine: Machine,
    rng: np.random.Generator | None = None,
    inputs: Mapping[str, np.ndarray] | None = None,
    *,
    record_kernels: bool = True,
    kernel_times: Mapping[str, Sequence[float]] | None = None,
    injector: "FaultInjector | None" = None,
    overlap: bool = False,
) -> ExecutionResult:
    """Run one inference of ``plan`` on ``machine``.

    Args:
        plan: the heterogeneous execution plan.
        machine: CPU + GPU + interconnect.
        rng: pass a generator to sample noisy latencies; ``None`` uses
            deterministic mean times.
        inputs: pass model inputs to also execute kernels numerically (the
            result then carries ``outputs``).
        record_kernels: set ``False`` to skip per-kernel timing records — a
            timing-only fast path for callers (the scheduler's latency
            oracle) that need just the end-to-end latency.
        kernel_times: optional precomputed per-task mean kernel durations
            (task id -> one duration per kernel, in kernel order).  Used
            only in mean mode (``rng is None``); latencies are bit-identical
            to recomputing because the same per-kernel values accumulate in
            the same order.
        injector: optional :class:`~repro.runtime.faults.FaultInjector`
            consulted as each task starts on the virtual clock: injected
            stalls add virtual time, kernel faults raise
            :class:`~repro.errors.TransientKernelError`, and device losses
            (``at_task``/``at_time``) raise
            :class:`~repro.errors.DeviceLostError` — so chaos scenarios
            can be explored without threads.  With ``None`` or an empty
            fault plan, latencies are bit-identical to the uninstrumented
            simulation.
        overlap: price the plan under the double-buffered transfer
            discipline (:mod:`repro.runtime.overlap`): transfers are issued
            eagerly at producer finish (external inputs at arrival) and the
            link serves them in ready order, so copies overlap with compute.
            Numerics are unaffected — only the virtual clock changes.
            Incompatible with ``injector`` (chaos runs use the lazy clock).
    """
    if overlap:
        if injector is not None:
            raise ExecutionError(
                "overlap=True does not support fault injection; "
                "use the lazy simulation for chaos probes"
            )
        return _simulate_overlapped(
            plan,
            machine,
            rng,
            inputs,
            record_kernels=record_kernels,
            kernel_times=kernel_times,
        )
    link = _LinkTimeline(machine, rng)
    host = machine.host
    device_free = {name: 0.0 for name in machine.device_names}
    task_finish: dict[str, float] = {}
    task_device: dict[str, str] = {}
    task_records: list[TaskRecord] = []
    values: dict[tuple[str, int], np.ndarray] = {}

    def source_arrival(task: TaskSpec, input_id: str, src: Source) -> float:
        n_bytes = float(task.module.graph.node(input_id).ty.size_bytes)
        if src.kind == "external":
            return link.arrival(
                key=("external", src.ref),
                label=f"external:{src.ref}",
                produced_at=0.0,
                produced_on=host,  # host-resident
                dest=task.device,
                n_bytes=n_bytes,
            )
        producer = plan.task(src.ref)
        _, out_bytes = _task_output_entry(producer, src.output_index)
        return link.arrival(
            key=("task", src.ref, src.output_index),
            label=f"task:{src.ref}[{src.output_index}]",
            produced_at=task_finish[src.ref],
            produced_on=task_device[src.ref],
            dest=task.device,
            n_bytes=out_bytes,
        )

    for task in plan.tasks:
        arrivals = [
            source_arrival(task, input_id, src)
            for input_id, src in task.sources.items()
        ]
        start = max([device_free[task.device], *arrivals]) if arrivals else device_free[task.device]
        if injector is not None:
            # Stalls extend the task on the virtual clock; kernel faults
            # and device losses raise (no retry here — the simulator is
            # the cheap chaos probe, recovery lives in the resilient
            # executor).
            start += injector.on_virtual_task(task.task_id, task.device, start)
        device = machine.device(task.device)

        kernel_records: list[KernelRecord] = []
        cursor = start
        feeds: dict[str, np.ndarray] | None = None
        if inputs is not None:
            # Numeric replay goes through the same feed-resolution helper
            # as the unified dispatch kernel (no injector: chaos on this
            # path is virtual-clock only, via on_virtual_task above).
            feeds = resolve_feeds(
                task, task.device, inputs, values, task_device
            )

        if feeds is None and rng is None:
            # Timing-only fast path: no numeric-env bookkeeping; mean
            # durations may come precomputed.  The per-kernel accumulation
            # order matches the general path, so latencies are bit-identical.
            times = (
                kernel_times.get(task.task_id)
                if kernel_times is not None
                else None
            )
            if times is None:
                times = [device.kernel_time(k.cost) for k in task.module.kernels]
            if record_kernels:
                for kernel, duration in zip(task.module.kernels, times):
                    kernel_records.append(
                        KernelRecord(
                            name=kernel.name, start=cursor, finish=cursor + duration
                        )
                    )
                    cursor += duration
            else:
                for duration in times:
                    cursor += duration
        else:
            for kernel in task.module.kernels:
                if rng is None:
                    duration = device.kernel_time(kernel.cost)
                else:
                    duration = device.sample_kernel_time(kernel.cost, rng)
                if record_kernels:
                    kernel_records.append(
                        KernelRecord(
                            name=kernel.name, start=cursor, finish=cursor + duration
                        )
                    )
                cursor += duration

        env = execute_kernels(task, feeds) if feeds is not None else None
        finish = cursor
        device_free[task.device] = finish
        task_finish[task.task_id] = finish
        task_device[task.task_id] = task.device
        task_records.append(
            TaskRecord(
                task_id=task.task_id,
                device=task.device,
                start=start,
                finish=finish,
                kernels=tuple(kernel_records),
            )
        )
        if env is not None:
            for idx, out_id in enumerate(task.module.output_ids):
                values[(task.task_id, idx)] = env[out_id]

    # Results must land on the host.
    latency = 0.0
    for tid, idx in plan.outputs:
        producer = plan.task(tid)
        _, out_bytes = _task_output_entry(producer, idx)
        arrival = link.arrival(
            key=("task", tid, idx),
            label=f"task:{tid}[{idx}]",
            produced_at=task_finish[tid],
            produced_on=task_device[tid],
            dest=host,
            n_bytes=out_bytes,
        )
        latency = max(latency, arrival)

    outputs = None
    if inputs is not None:
        outputs = [values[(tid, idx)] for tid, idx in plan.outputs]
    return ExecutionResult(
        latency=latency,
        tasks=task_records,
        transfers=link.records,
        outputs=outputs,
    )


def _simulate_overlapped(
    plan: HeteroPlan,
    machine: Machine,
    rng: np.random.Generator | None,
    inputs: Mapping[str, np.ndarray] | None,
    *,
    record_kernels: bool,
    kernel_times: Mapping[str, Sequence[float]] | None,
) -> ExecutionResult:
    """The ``overlap=True`` arm of :func:`simulate`.

    Timing comes from one single-request overlapped replay; numerics (when
    ``inputs`` are given) from the same plan-order kernel walk as the lazy
    path — the schedule discipline moves events on the virtual clock but
    never changes what is computed.
    """
    replay = replay_plan(
        plan, machine, arrivals=[0.0], rng=rng, kernel_times=kernel_times
    )

    task_records: list[TaskRecord] = []
    for rt in replay.tasks:
        task = plan.task(rt.task_id)
        kernel_records: tuple[KernelRecord, ...] = ()
        if record_kernels:
            cursor = rt.start
            recs = []
            for kernel, duration in zip(task.module.kernels, rt.kernel_durations):
                recs.append(
                    KernelRecord(
                        name=kernel.name, start=cursor, finish=cursor + duration
                    )
                )
                cursor += duration
            kernel_records = tuple(recs)
        task_records.append(
            TaskRecord(
                task_id=rt.task_id,
                device=rt.device,
                start=rt.start,
                finish=rt.finish,
                kernels=kernel_records,
            )
        )
    transfer_records = [
        TransferRecord(
            what=tr.what,
            dest_device=tr.dest_device,
            n_bytes=tr.n_bytes,
            start=tr.start,
            finish=tr.finish,
        )
        for tr in replay.transfers
    ]

    outputs = None
    if inputs is not None:
        values: dict[tuple[str, int], np.ndarray] = {}
        task_device: dict[str, str] = {}
        for task in plan.tasks:
            feeds = resolve_feeds(task, task.device, inputs, values, task_device)
            env = execute_kernels(task, feeds)
            task_device[task.task_id] = task.device
            for idx, out_id in enumerate(task.module.output_ids):
                values[(task.task_id, idx)] = env[out_id]
        outputs = [values[(tid, idx)] for tid, idx in plan.outputs]

    return ExecutionResult(
        latency=replay.completions[0],
        tasks=task_records,
        transfers=transfer_records,
        outputs=outputs,
    )


class _BatchLinkTimeline:
    """Vectorized serialized links: every scalar time is an (n_runs,)
    array, with one free cursor per device pair (see :class:`_LinkTimeline`)."""

    def __init__(self, machine: Machine, rng: np.random.Generator, n_runs: int):
        self._machine = machine
        self._rng = rng
        self._n = n_runs
        self._free_at: dict[tuple[str, str], np.ndarray] = {}
        self._arrivals: dict[tuple[tuple, str], np.ndarray] = {}

    def arrival(
        self,
        key: tuple,
        produced_at: np.ndarray | float,
        produced_on: str,
        dest: str,
        n_bytes: float,
    ) -> np.ndarray | float:
        if produced_on == dest:
            return produced_at
        cached = self._arrivals.get((key, dest))
        if cached is not None:
            return cached
        link = self._machine.link(produced_on, dest)
        duration = link.sample_transfer_time_batch(n_bytes, self._rng, self._n)
        pair = _pair(produced_on, dest)
        free_at = self._free_at.get(pair)
        if free_at is None:
            free_at = np.zeros(self._n)
        start = np.maximum(free_at, produced_at)
        finish = start + duration
        self._free_at[pair] = finish
        self._arrivals[(key, dest)] = finish
        return finish


def simulate_batch(
    plan: HeteroPlan,
    machine: Machine,
    rng: np.random.Generator,
    n_runs: int,
) -> np.ndarray:
    """``n_runs`` sampled end-to-end latencies of ``plan`` in one pass.

    Vectorizes the discrete-event simulation over runs: the sequence of
    noise events (which kernel / which transfer, in which order) is fixed
    by the plan's structure, so every scalar quantity of :func:`simulate`
    — device cursors, link free time, task finishes — becomes an
    ``(n_runs,)`` array and per-event noise is drawn as one batched NumPy
    call instead of ``n_runs`` sequential simulator walks.

    Draw-order convention: noise is drawn event-major (for each event, a
    vector across runs) in the same event order :func:`simulate` uses, so
    for ``n_runs=1`` the result is bit-identical to one scalar sampled
    simulation with the same generator.  Results are reproducible for a
    given seeded ``rng``.
    """
    if n_runs <= 0:
        raise ExecutionError(f"n_runs must be positive, got {n_runs}")
    link = _BatchLinkTimeline(machine, rng, n_runs)
    host = machine.host
    zeros = np.zeros(n_runs)
    device_free: dict[str, np.ndarray] = {
        name: zeros for name in machine.device_names
    }
    task_finish: dict[str, np.ndarray] = {}
    task_device: dict[str, str] = {}

    def source_arrival(task: TaskSpec, input_id: str, src: Source):
        n_bytes = float(task.module.graph.node(input_id).ty.size_bytes)
        if src.kind == "external":
            return link.arrival(
                key=("external", src.ref),
                produced_at=0.0,
                produced_on=host,  # host-resident
                dest=task.device,
                n_bytes=n_bytes,
            )
        producer = plan.task(src.ref)
        _, out_bytes = _task_output_entry(producer, src.output_index)
        return link.arrival(
            key=("task", src.ref, src.output_index),
            produced_at=task_finish[src.ref],
            produced_on=task_device[src.ref],
            dest=task.device,
            n_bytes=out_bytes,
        )

    for task in plan.tasks:
        start = device_free[task.device]
        for input_id, src in task.sources.items():
            start = np.maximum(start, source_arrival(task, input_id, src))
        device = machine.device(task.device)
        cursor = start
        for kernel in task.module.kernels:
            cursor = cursor + device.sample_kernel_time_batch(
                kernel.cost, rng, n_runs
            )
        device_free[task.device] = cursor
        task_finish[task.task_id] = cursor
        task_device[task.task_id] = task.device

    # Results must land on the host.
    latency = np.zeros(n_runs)
    for tid, idx in plan.outputs:
        producer = plan.task(tid)
        _, out_bytes = _task_output_entry(producer, idx)
        arrival = link.arrival(
            key=("task", tid, idx),
            produced_at=task_finish[tid],
            produced_on=task_device[tid],
            dest=host,
            n_bytes=out_bytes,
        )
        latency = np.maximum(latency, arrival)
    return latency
