"""Reusable engine sessions: plan once, serve many requests.

The serving story (ROADMAP north-star) needs the property the related
multi-tenant scheduling literature presumes: one scheduling decision is
executed many times over many requests.  ``DuetEngine.run`` re-enters the
simulator — and ``DuetEngine.optimize`` re-enters the whole
partition/profile/schedule pipeline — on every call.  An
:class:`EngineSession` front-loads all of that exactly once:

* the optimization (plan, placements, degradation plans) is fixed at
  session construction;
* the dispatch dependency structure is precomputed once inside the
  unified :class:`~repro.runtime.core.DispatchKernel`;
* model parameters are materialized eagerly (weights load at session
  construction, never mid-request);
* intermediate tensors live in a preallocated
  :class:`~repro.runtime.memory.TensorArena`, so steady-state requests
  reuse stable buffers instead of allocating.

``run(inputs)`` then costs one inline dispatch: resolve feeds, execute
kernels, collect outputs.  Outputs are copied out of the arena, so they
stay valid after the next request overwrites the session's buffers and
are bit-identical to a fresh ``DuetEngine.run``.

A session is not thread-safe for concurrent ``run`` calls; an internal
lock serializes them.  Sessions are cheap — use one per serving thread.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Mapping

import numpy as np

from repro.runtime.core import (
    DispatchKernel,
    ExecutionEvent,
    InlineWorkers,
    InvariantMiddleware,
    Middleware,
    TracingMiddleware,
)
from repro.runtime.memory import TensorArena
from repro.runtime.plan import HeteroPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import DuetOptimization
    from repro.runtime.faults import FaultInjector

__all__ = ["SessionResult", "EngineSession"]


@dataclass
class SessionResult:
    """Outcome of one session request.

    Attributes:
        outputs: model outputs (owned by the caller; later requests on
            the same session do not invalidate them).
        wall_time_s: host wall-clock time of this request's dispatch.
    """

    outputs: list[np.ndarray]
    wall_time_s: float


class EngineSession:
    """Serves repeated inferences of one optimized model.

    Build via :meth:`repro.core.engine.DuetEngine.session`, or directly
    from a plan.  Compilation, planning, and dependency analysis happen
    once, here; each :meth:`run` is a single pass through the unified
    dispatch kernel with arena-backed intermediate storage.

    Args:
        plan: the heterogeneous plan to serve.
        validate: install the invariant middleware (output shape/dtype
            checks against the declared graph types on every task).
        trace_sink: optional callable receiving a structured
            :class:`~repro.runtime.core.ExecutionEvent` for every task
            start/finish/error.
        preallocate: size the arena from the plan's declared node types
            up front so even the first request allocates nothing.
        opt: the originating optimization, kept for introspection
            (``session.opt``) when built through the engine.
        middleware: extra policy middleware (retry, metrics, deadlines)
            wrapping every task attempt, placed *outermost* — before the
            tracing and validation stages — so e.g. a retry middleware
            re-enters tracing on each attempt.
        fault_injector: optional deterministic chaos hooks (used by the
            serving stress tests to exercise the retry path in place).
        validate_transfers: install the non-finite transfer guard after
            feed resolution, turning corrupted cross-device tensors into
            retryable :class:`~repro.errors.TransferError`.
    """

    def __init__(
        self,
        plan: HeteroPlan,
        *,
        validate: bool = False,
        trace_sink: Callable[[ExecutionEvent], None] | None = None,
        preallocate: bool = True,
        opt: "DuetOptimization | None" = None,
        middleware: Iterable[Middleware] = (),
        fault_injector: "FaultInjector | None" = None,
        validate_transfers: bool = False,
    ):
        self.plan = plan
        self.opt = opt
        for task in plan.tasks:
            # Parameters materialize lazily on first access; a serving
            # session loads weights at construction, not mid-request.
            task.module.params
        self.arena = TensorArena()
        if preallocate:
            self.arena.preallocate(plan)
        stack: list[Middleware] = list(middleware)
        if trace_sink is not None:
            stack.append(TracingMiddleware(trace_sink))
        if validate:
            stack.append(InvariantMiddleware())
        self._kernel = DispatchKernel(
            plan,
            workers=InlineWorkers(),
            middleware=stack,
            arena=self.arena,
            fault_injector=fault_injector,
            validate_transfers=validate_transfers,
        )
        self._lock = threading.Lock()
        self.requests_served = 0

    def run(self, inputs: Mapping[str, np.ndarray]) -> SessionResult:
        """One inference; returns outputs the caller owns."""
        began = time.perf_counter()
        with self._lock:
            result = self._kernel.run(inputs)
            self.requests_served += 1
        outputs = [np.copy(o) for o in result.outputs]
        return SessionResult(
            outputs=outputs, wall_time_s=time.perf_counter() - began
        )

    def run_many(
        self, batches: Iterable[Mapping[str, np.ndarray]]
    ) -> list[SessionResult]:
        """Serve a sequence of requests back to back."""
        return [self.run(inputs) for inputs in batches]
