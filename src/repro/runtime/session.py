"""Reusable engine sessions: plan once, serve many requests.

The serving story (ROADMAP north-star) needs the property the related
multi-tenant scheduling literature presumes: one scheduling decision is
executed many times over many requests.  ``DuetEngine.run`` re-enters the
simulator — and ``DuetEngine.optimize`` re-enters the whole
partition/profile/schedule pipeline — on every call.  An
:class:`EngineSession` front-loads all of that exactly once:

* the optimization (plan, placements, degradation plans) is fixed at
  session construction;
* the dispatch dependency structure is precomputed once inside the
  unified :class:`~repro.runtime.core.DispatchKernel`;
* model parameters are materialized eagerly (weights load at session
  construction, never mid-request);
* intermediate tensors live in a preallocated
  :class:`~repro.runtime.memory.TensorArena`, so steady-state requests
  reuse stable buffers instead of allocating.

``run(inputs)`` then costs one inline dispatch: resolve feeds, execute
kernels, collect outputs.  Outputs are copied out of the arena, so they
stay valid after the next request overwrites the session's buffers and
are bit-identical to a fresh ``DuetEngine.run``.

A session is not thread-safe for concurrent ``run`` calls; an internal
lock serializes them.  Sessions are cheap — use one per serving thread.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Mapping

import numpy as np

from repro.runtime.core import (
    CoreResult,
    DispatchKernel,
    ExecutionEvent,
    InlineWorkers,
    InvariantMiddleware,
    Middleware,
    PhaseCheckpoint,
    TracingMiddleware,
)
from repro.runtime.memory import TensorArena
from repro.runtime.plan import HeteroPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import DuetOptimization
    from repro.runtime.faults import FaultInjector

__all__ = ["SessionResult", "SuspendedRun", "EngineSession"]


@dataclass
class SessionResult:
    """Outcome of one session request.

    Attributes:
        outputs: model outputs (owned by the caller; later requests on
            the same session do not invalidate them).
        wall_time_s: host wall-clock time of this request's dispatch.
    """

    outputs: list[np.ndarray]
    wall_time_s: float
    preemptions: int = 0


class SuspendedRun:
    """A session request preempted at a plan phase boundary.

    Holds the :class:`~repro.runtime.core.PhaseCheckpoint` of the
    suspended dispatch.  While suspended, the session lock is released:
    the same session may serve other (e.g. higher-priority) requests,
    whose arena reuse cannot perturb the checkpoint (its values are
    detached copies).  Call :meth:`resume` to continue from the
    completed-phase frontier; the eventual outputs are bit-identical to
    an uninterrupted :meth:`EngineSession.run` of the same inputs.
    """

    def __init__(
        self,
        session: "EngineSession",
        checkpoint: PhaseCheckpoint,
        should_preempt: Callable[[], bool],
    ):
        self._session = session
        self._checkpoint = checkpoint
        self._should_preempt = should_preempt

    @property
    def phase_index(self) -> int:
        """The last completed phase."""
        return self._checkpoint.phase_index

    @property
    def preemptions(self) -> int:
        """How many times this request has been suspended so far."""
        return self._checkpoint.preemptions

    def resume(
        self, should_preempt: Callable[[], bool] | None = None
    ) -> "SessionResult | SuspendedRun":
        """Continue execution; may suspend again at a later boundary.

        ``should_preempt`` overrides the predicate for the remaining
        phases (defaults to the one the run started with).
        """
        return self._session._continue(
            self._checkpoint,
            should_preempt if should_preempt is not None else (
                self._should_preempt
            ),
        )


class EngineSession:
    """Serves repeated inferences of one optimized model.

    Build via :meth:`repro.core.engine.DuetEngine.session`, or directly
    from a plan.  Compilation, planning, and dependency analysis happen
    once, here; each :meth:`run` is a single pass through the unified
    dispatch kernel with arena-backed intermediate storage.

    Args:
        plan: the heterogeneous plan to serve.
        validate: install the invariant middleware (output shape/dtype
            checks against the declared graph types on every task).
        trace_sink: optional callable receiving a structured
            :class:`~repro.runtime.core.ExecutionEvent` for every task
            start/finish/error.
        preallocate: size the arena from the plan's declared node types
            up front so even the first request allocates nothing.
        opt: the originating optimization, kept for introspection
            (``session.opt``) when built through the engine.
        middleware: extra policy middleware (retry, metrics, deadlines)
            wrapping every task attempt, placed *outermost* — before the
            tracing and validation stages — so e.g. a retry middleware
            re-enters tracing on each attempt.
        fault_injector: optional deterministic chaos hooks (used by the
            serving stress tests to exercise the retry path in place).
        validate_transfers: install the non-finite transfer guard after
            feed resolution, turning corrupted cross-device tensors into
            retryable :class:`~repro.errors.TransferError`.
    """

    def __init__(
        self,
        plan: HeteroPlan,
        *,
        validate: bool = False,
        trace_sink: Callable[[ExecutionEvent], None] | None = None,
        preallocate: bool = True,
        opt: "DuetOptimization | None" = None,
        middleware: Iterable[Middleware] = (),
        fault_injector: "FaultInjector | None" = None,
        validate_transfers: bool = False,
    ):
        self.plan = plan
        self.opt = opt
        for task in plan.tasks:
            # Parameters materialize lazily on first access; a serving
            # session loads weights at construction, not mid-request.
            task.module.params
        self.arena = TensorArena()
        if preallocate:
            self.arena.preallocate(plan)
        stack: list[Middleware] = list(middleware)
        if trace_sink is not None:
            stack.append(TracingMiddleware(trace_sink))
        if validate:
            stack.append(InvariantMiddleware())
        self._kernel = DispatchKernel(
            plan,
            workers=InlineWorkers(),
            middleware=stack,
            arena=self.arena,
            fault_injector=fault_injector,
            validate_transfers=validate_transfers,
        )
        self._lock = threading.Lock()
        self.requests_served = 0

    def run(self, inputs: Mapping[str, np.ndarray]) -> SessionResult:
        """One inference; returns outputs the caller owns."""
        began = time.perf_counter()
        with self._lock:
            result = self._kernel.run(inputs)
            self.requests_served += 1
        outputs = [np.copy(o) for o in result.outputs]
        return SessionResult(
            outputs=outputs, wall_time_s=time.perf_counter() - began
        )

    def run_many(
        self, batches: Iterable[Mapping[str, np.ndarray]]
    ) -> list[SessionResult]:
        """Serve a sequence of requests back to back."""
        return [self.run(inputs) for inputs in batches]

    def run_preemptible(
        self,
        inputs: Mapping[str, np.ndarray],
        should_preempt: Callable[[], bool],
    ) -> "SessionResult | SuspendedRun":
        """One inference that may suspend at plan phase boundaries.

        Returns a :class:`SessionResult` when the request ran to
        completion, or a :class:`SuspendedRun` when ``should_preempt()``
        fired at a phase boundary.  The session lock is released while
        suspended, so the caller may serve other requests on this
        session before resuming; outputs are bit-identical to
        :meth:`run` either way.
        """
        with self._lock:
            outcome = self._kernel.run_preemptible(
                inputs, should_preempt=should_preempt
            )
            return self._conclude(outcome, should_preempt, preemptions=0)

    def _continue(
        self,
        checkpoint: PhaseCheckpoint,
        should_preempt: Callable[[], bool],
    ) -> "SessionResult | SuspendedRun":
        with self._lock:
            outcome = self._kernel.run_preemptible(
                should_preempt=should_preempt, checkpoint=checkpoint
            )
            return self._conclude(
                outcome, should_preempt, preemptions=checkpoint.preemptions
            )

    def _conclude(
        self,
        outcome: "CoreResult | PhaseCheckpoint",
        should_preempt: Callable[[], bool],
        preemptions: int,
    ) -> "SessionResult | SuspendedRun":
        """Wrap a preemptible dispatch outcome (caller holds the lock)."""
        if isinstance(outcome, PhaseCheckpoint):
            return SuspendedRun(self, outcome, should_preempt)
        self.requests_served += 1
        # wall_time_s counts active execution segments only; a preempted
        # request is not billed for time spent suspended.
        return SessionResult(
            outputs=[np.copy(o) for o in outcome.outputs],
            wall_time_s=outcome.wall_time_s,
            preemptions=preemptions,
        )
