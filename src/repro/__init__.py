"""DUET reproduction.

A compiler-runtime subgraph scheduling engine for tensor programs on a
coupled CPU-GPU architecture, reproducing Zhang, Hu & Li (IPDPS 2021).

Public entry points:

* :class:`repro.ir.GraphBuilder` — build tensor computation graphs.
* :mod:`repro.models` — the paper's workload zoo (Wide&Deep, Siamese,
  MT-DNN, ResNet).
* :class:`repro.core.engine.DuetEngine` — partition + profile + schedule +
  execute a model across CPU and GPU.
* :mod:`repro.baselines` — TVM-like and framework-like single-device
  baselines used in the paper's evaluation.
"""

__version__ = "1.0.0"

from repro.errors import ReproError

__all__ = ["ReproError", "__version__"]
