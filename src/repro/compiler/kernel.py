"""Compiled kernels: fused operator groups plus cost metadata.

A :class:`CompiledKernel` is the unit the runtime executes and the unit the
device cost models price.  Its :class:`KernelCost` summarizes everything a
device needs: FLOPs, memory traffic, intra-kernel parallelism, and the
number of serially-dependent launches (recurrent layers lower to
``seq_len × kernels_per_step`` launches — the key to the paper's RNN-on-GPU
observation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.ir.ops import OpKind

__all__ = ["KernelCost", "CompiledKernel"]


@dataclass(frozen=True)
class KernelCost:
    """Cost metadata for one compiled kernel.

    Attributes:
        flops: total floating-point operations per invocation.
        bytes_in: bytes read from kernel-external tensors.
        bytes_out: bytes written to the kernel output.
        parallelism: independent parallel work items *per launch* (drives the
            GPU utilization model).
        sequential_steps: serially-dependent step count (1 except recurrent).
        kernels_per_step: device-kernel launches per step.
        kind: dominant computational category (conv, gemm, recurrent, ...).
    """

    flops: float
    bytes_in: float
    bytes_out: float
    parallelism: float
    sequential_steps: int = 1
    kernels_per_step: int = 1
    kind: OpKind = OpKind.ELEMWISE

    @property
    def total_launches(self) -> int:
        """Total device-kernel launches per invocation."""
        return self.sequential_steps * self.kernels_per_step

    @property
    def total_bytes(self) -> float:
        """Total external memory traffic per invocation."""
        return self.bytes_in + self.bytes_out


@dataclass(frozen=True)
class CompiledKernel:
    """One executable fused kernel.

    Attributes:
        name: debug label, e.g. ``"fused_dense_bias_add_relu_3"``.
        node_ids: graph nodes folded into this kernel (topological order).
        input_ids: kernel-external argument node ids, positional.
        output_id: graph node id whose value this kernel produces.
        fn: implementation taking the external arguments — the NumPy
            closure, or a ctypes-dispatched native kernel with the same
            call contract.
        cost: cost metadata for the device models.
        target_name: device this kernel was generated for.
        backend: kernel backend actually in use: ``"numpy"``, or
            ``"native"`` when the C renderer accepted the group (native
            modules may mix per-kernel when the renderer rejects some).
        exact: True when this kernel is bit-identical to the NumPy
            reference (always True for numpy; per the renderer's
            order-preserving analysis for native).
        run_into: optional zero-copy entry writing into a caller-owned
            contiguous buffer (native kernels only).
    """

    name: str
    node_ids: tuple[str, ...]
    input_ids: tuple[str, ...]
    output_id: str
    fn: Callable[[Sequence[np.ndarray]], np.ndarray]
    cost: KernelCost
    target_name: str = "cpu"
    backend: str = "numpy"
    exact: bool = True
    run_into: Callable[[Sequence[np.ndarray], np.ndarray], np.ndarray] | None = None

    def __call__(self, args: Sequence[np.ndarray]) -> np.ndarray:
        return self.fn(args)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CompiledKernel({self.name!r}, nodes={len(self.node_ids)}, "
            f"flops={self.cost.flops:.3g})"
        )
