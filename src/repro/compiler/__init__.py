"""Mini DL compiler: graph passes, fusion, lowering to costed kernels."""

from repro.compiler.fusion import FusionGroup, plan_fusion
from repro.compiler.kernel import CompiledKernel, KernelCost
from repro.compiler.lowering import CompiledModule, lower
from repro.compiler.pass_manager import PassManager, PassRecord, default_passes
from repro.compiler.native import (
    NativeCache,
    NativeKernel,
    NativeOptions,
    native_available,
)
from repro.compiler.pipeline import Compiler, CompileResult, compile_graph
from repro.compiler.target import BACKENDS, CPU_TARGET, GPU_TARGET, Target

__all__ = [
    "BACKENDS",
    "CPU_TARGET",
    "GPU_TARGET",
    "CompileResult",
    "CompiledKernel",
    "CompiledModule",
    "Compiler",
    "FusionGroup",
    "KernelCost",
    "NativeCache",
    "NativeKernel",
    "NativeOptions",
    "PassManager",
    "PassRecord",
    "Target",
    "compile_graph",
    "default_passes",
    "lower",
    "native_available",
    "plan_fusion",
]
