"""Mini DL compiler: graph passes, fusion, lowering to costed kernels."""

from repro.compiler.fusion import FusionGroup, plan_fusion
from repro.compiler.kernel import CompiledKernel, KernelCost
from repro.compiler.lowering import CompiledModule, lower
from repro.compiler.pass_manager import PassManager, PassRecord, default_passes
from repro.compiler.pipeline import Compiler, CompileResult, compile_graph
from repro.compiler.target import CPU_TARGET, GPU_TARGET, Target

__all__ = [
    "CPU_TARGET",
    "GPU_TARGET",
    "CompileResult",
    "CompiledKernel",
    "CompiledModule",
    "Compiler",
    "FusionGroup",
    "KernelCost",
    "PassManager",
    "PassRecord",
    "Target",
    "compile_graph",
    "default_passes",
    "lower",
    "plan_fusion",
]
