"""The compiler front door: optimize + lower in one call.

This plays the role TVM plays for DUET (paper §V): given any graph — a
whole model or a partitioned subgraph treated as a standalone model — it
runs graph-level optimization passes and lowers to an executable,
cost-annotated module for a target device.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.lowering import CompiledModule, lower
from repro.compiler.pass_manager import PassManager, PassRecord, default_passes
from repro.compiler.target import CPU_TARGET, GPU_TARGET, Target
from repro.ir.graph import Graph

__all__ = ["CompileResult", "compile_graph", "Compiler"]


@dataclass(frozen=True)
class CompileResult:
    """A compiled module plus the optimization trace that produced it."""

    module: CompiledModule
    pass_trace: tuple[PassRecord, ...]


def compile_graph(
    graph: Graph,
    target: Target,
    opt_level: int = 2,
    param_seed: int = 0,
    fuse: bool = True,
) -> CompileResult:
    """Optimize and lower ``graph`` for ``target``.

    Args:
        graph: model or subgraph to compile.
        target: CPU or GPU backend.
        opt_level: 0 = no rewrites, 1 = structural cleanups, 2 = full
            graph-level optimization (default; the paper's TVM baseline).
        param_seed: seed for lazy parameter materialization.
        fuse: disable to get one kernel per operator (framework-like
            execution without fusion).
    """
    pm = PassManager(default_passes(opt_level))
    optimized = pm.run(graph)
    module = lower(optimized, target, fuse=fuse)
    module.param_seed = param_seed
    return CompileResult(module=module, pass_trace=tuple(pm.trace))


@dataclass
class Compiler:
    """A reusable compiler configuration (opt level, fusion, param seed).

    ``fuse=False`` yields one kernel per operator — used by the
    compiler-awareness ablation to produce the kind of unoptimized timing
    a framework profiler would report (§IV-B).
    """

    opt_level: int = 2
    param_seed: int = 0
    fuse: bool = True

    def compile(self, graph: Graph, target: Target) -> CompiledModule:
        return compile_graph(
            graph,
            target,
            opt_level=self.opt_level,
            param_seed=self.param_seed,
            fuse=self.fuse,
        ).module

    def compile_cpu(self, graph: Graph) -> CompiledModule:
        return self.compile(graph, CPU_TARGET)

    def compile_gpu(self, graph: Graph) -> CompiledModule:
        return self.compile(graph, GPU_TARGET)
