"""The compiler front door: optimize + lower in one call.

This plays the role TVM plays for DUET (paper §V): given any graph — a
whole model or a partitioned subgraph treated as a standalone model — it
runs graph-level optimization passes and lowers to an executable,
cost-annotated module for a target device.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.lowering import CompiledModule, lower
from repro.compiler.pass_manager import PassManager, PassRecord, default_passes
from repro.compiler.target import CPU_TARGET, GPU_TARGET, Target
from repro.ir.graph import Graph

__all__ = ["CompileResult", "compile_graph", "Compiler"]


@dataclass(frozen=True)
class CompileResult:
    """A compiled module plus the optimization trace that produced it."""

    module: CompiledModule
    pass_trace: tuple[PassRecord, ...]


def compile_graph(
    graph: Graph,
    target: Target,
    opt_level: int = 2,
    param_seed: int = 0,
    fuse: bool = True,
    native: "object | None" = None,
) -> CompileResult:
    """Optimize and lower ``graph`` for ``target``.

    Args:
        graph: model or subgraph to compile.
        target: CPU or GPU device, with the kernel backend to lower
            through (``Target.backend``).
        opt_level: 0 = no rewrites, 1 = structural cleanups, 2 = full
            graph-level optimization (default; the paper's TVM baseline).
        param_seed: seed for lazy parameter materialization.
        fuse: disable to get one kernel per operator (framework-like
            execution without fusion).
        native: optional :class:`repro.compiler.native.NativeOptions`
            (cache/autotune knobs) for native-backend targets.
    """
    pm = PassManager(default_passes(opt_level))
    optimized = pm.run(graph)
    module = lower(optimized, target, fuse=fuse, native=native)
    module.param_seed = param_seed
    return CompileResult(module=module, pass_trace=tuple(pm.trace))


@dataclass
class Compiler:
    """A reusable compiler configuration (opt level, fusion, param seed).

    ``fuse=False`` yields one kernel per operator — used by the
    compiler-awareness ablation to produce the kind of unoptimized timing
    a framework profiler would report (§IV-B).

    ``backend="native"`` lowers fused kernels through the C renderer and
    the signature-keyed .so cache; kernels the renderer rejects keep
    their NumPy closures, and the whole path degrades to NumPy when no
    system compiler exists.  ``native`` carries the cache/autotune knobs
    (:class:`repro.compiler.native.NativeOptions`).
    """

    opt_level: int = 2
    param_seed: int = 0
    fuse: bool = True
    backend: str = "numpy"
    native: "object | None" = None

    def compile(self, graph: Graph, target: Target) -> CompiledModule:
        if self.backend != target.backend:
            target = target.with_backend(self.backend)
        return compile_graph(
            graph,
            target,
            opt_level=self.opt_level,
            param_seed=self.param_seed,
            fuse=self.fuse,
            native=self.native,
        ).module

    def compile_cpu(self, graph: Graph) -> CompiledModule:
        return self.compile(graph, CPU_TARGET)

    def compile_gpu(self, graph: Graph) -> CompiledModule:
        return self.compile(graph, GPU_TARGET)
