"""Numerics policy for the native C backend.

The native renderer deliberately splits the operator inventory into two
classes, and the differential oracle compares each class differently:

* **Order-preserving (exact) ops** replicate the NumPy reference
  evaluation order operation-for-operation using only IEEE-754 basic
  arithmetic (``+ - * /``, ``sqrt``, comparisons, copies).  Compiled
  with ``-ffp-contract=off`` (no FMA contraction) and without
  ``-ffast-math`` these are **bit-identical** to the NumPy kernels, so
  the oracle demands exact equality — same shape, same dtype, ``==``
  everywhere.

* **Reassociated / transcendental ops** cannot be bit-exact: NumPy's
  GEMM (BLAS) and reductions (pairwise summation) use a different
  association order than our sequential-``k`` microkernels, and NumPy's
  SIMD transcendentals (``exp``/``log``/``tanh``) differ from libm by a
  few ULP.  Each such op carries a ULP budget below; a graph's total
  tolerance is the *sum* of the budgets of every inexact op instance it
  contains (error compounds along depth), with recurrent layers scaled
  by their sequential step count (state drift compounds per step).

The budgets are deliberately generous — tens of thousands of float32
ULPs is still ~1e-3 relative error, far below what any real kernel bug
(wrong element, wrong axis, stale state) produces — while exact-class
kernels keep the oracle's bit-level teeth.
"""

from __future__ import annotations

import numpy as np

from repro.ir.graph import Graph

__all__ = [
    "EXACT_OPS",
    "ULP_BUDGETS",
    "graph_ulp_budget",
    "is_exact_op",
    "max_ulp_diff",
    "ulp_close",
]

#: Ops the renderer emits in NumPy's exact evaluation order using only
#: correctly-rounded IEEE-754 operations: bit-identical to the reference.
EXACT_OPS = frozenset(
    {
        "add",
        "subtract",
        "multiply",
        "divide",
        "maximum",
        "minimum",
        "relu",
        "negative",
        "abs",
        "sqrt",
        "identity",
        "leaky_relu",
        "clip",
        "bias_add",
        "batch_norm",
        "max_pool2d",
        "reduce_max",
        "reduce_min",
        "argmax",
        "reshape",
        "flatten",
        "transpose",
        "concat",
        "strided_slice",
        "embedding",
        "reverse",
    }
)

#: Per-op ULP budgets for the reassociated/transcendental class.
#: Keys absent here and from EXACT_OPS are ops the renderer rejects
#: (it falls back to the NumPy closure, which is exact by definition).
ULP_BUDGETS: dict[str, float] = {
    # libm vs NumPy SIMD transcendentals: a few ULP each.
    "exp": 256.0,
    "log": 256.0,
    "sigmoid": 256.0,
    "tanh": 256.0,
    "gelu": 512.0,
    # Reductions: pairwise (NumPy) vs sequential (C) summation.
    "reduce_sum": 1024.0,
    "reduce_mean": 1024.0,
    "avg_pool2d": 512.0,
    "global_avg_pool2d": 1024.0,
    "softmax": 2048.0,
    "log_softmax": 2048.0,
    "layer_norm": 4096.0,
    # GEMM family: BLAS blocking vs register-tile microkernel.
    "dense": 4096.0,
    "matmul": 4096.0,
    "batch_matmul": 4096.0,
    "conv2d": 8192.0,
    "depthwise_conv2d": 4096.0,
    # Recurrent: budget below is *per step*; graph_ulp_budget scales it
    # by seq_len because hidden-state drift compounds every step.
    "lstm": 8192.0,
    "gru": 8192.0,
}

_RECURRENT = ("lstm", "gru")


def is_exact_op(name: str) -> bool:
    """True when the renderer's emission of ``name`` is bit-exact."""
    return name in EXACT_OPS


def graph_ulp_budget(graph: Graph) -> float:
    """Total ULP tolerance for comparing a native run of ``graph`` to
    the NumPy reference; ``0.0`` means the comparison must be exact."""
    budget = 0.0
    for nid in graph.topo_order():
        node = graph.node(nid)
        if not node.is_op:
            continue
        per_op = ULP_BUDGETS.get(node.op, 0.0)
        if per_op and node.op in _RECURRENT:
            data_ty = graph.node(node.inputs[0]).ty
            per_op *= max(1, int(data_ty.shape[1]))
        budget += per_op
    return budget


def max_ulp_diff(a: np.ndarray, b: np.ndarray) -> float:
    """Largest elementwise ULP distance between two same-typed float
    arrays, with a cancellation floor.

    The distance for each element is ``|a - b| / spacing(scale)`` where
    ``scale`` is the larger magnitude of the pair, floored at ``1e-6`` of
    the tensor-wide maximum magnitude so that catastrophic cancellation
    (two big sums whose difference is tiny) does not explode the metric.
    Non-finite values must match exactly (NaN==NaN, same-signed inf) or
    the result is ``inf``.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape or a.dtype != b.dtype:
        return float("inf")
    if not np.issubdtype(a.dtype, np.floating):
        return 0.0 if np.array_equal(a, b) else float("inf")
    finite_a, finite_b = np.isfinite(a), np.isfinite(b)
    if not np.array_equal(finite_a, finite_b):
        return float("inf")
    nonfinite = ~finite_a
    if nonfinite.any() and not np.array_equal(
        a[nonfinite], b[nonfinite], equal_nan=True
    ):
        return float("inf")
    if not finite_a.any():
        return 0.0
    af = a[finite_a].astype(np.float64)
    bf = b[finite_b].astype(np.float64)
    scale = np.maximum(np.abs(af), np.abs(bf))
    floor = float(scale.max()) * 1e-6
    tiny = float(np.finfo(a.dtype).tiny)
    scale = np.maximum(scale, max(floor, tiny)).astype(a.dtype)
    ulp = np.abs(af - bf) / np.spacing(scale).astype(np.float64)
    return float(ulp.max()) if ulp.size else 0.0


def ulp_close(a: np.ndarray, b: np.ndarray, budget: float) -> bool:
    """Whether ``a`` matches ``b`` within ``budget`` ULPs (exact when
    the budget is zero or the dtype is not floating)."""
    if budget <= 0.0:
        return bool(
            np.asarray(a).shape == np.asarray(b).shape
            and np.asarray(a).dtype == np.asarray(b).dtype
            and np.array_equal(a, b)
        )
    return max_ulp_diff(a, b) <= budget
