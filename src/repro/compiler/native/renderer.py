"""C renderer: one fused kernel group → one standalone C function.

The renderer walks a fusion group's member nodes in topological order and
emits one loop nest per node, writing intermediates into a scratch
workspace and the group output into the caller's ``out`` buffer:

.. code-block:: c

    void duet_kernel(const void *const *args, void *out, void *scratch);

Emission rules (see :mod:`repro.compiler.native.policy`):

* Exact-class ops replicate NumPy's evaluation order with IEEE basic
  arithmetic only — compiled with ``-ffp-contract=off`` they are
  bit-identical to the reference kernels.  NaN-propagating min/max are
  emitted explicitly (C's ``?:`` would drop NaNs that ``np.maximum``
  keeps).
* GEMM-family ops use a register-blocked microkernel (an ``MR×NR``
  accumulator tile; the tile is the autotuner's search variable).  The
  per-output ``k`` accumulation stays sequential for every tile, so a
  given kernel is deterministic across tile variants.
* LSTM/GRU lower to explicit step loops over scratch-resident state,
  matching the PyTorch weight layout and gate order of the reference.

Anything the renderer cannot prove it handles (unsupported op, dtype
promotion it does not model) raises :class:`NativeUnsupported`, and the
caller falls back to the NumPy closure for that kernel only.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.compiler.fusion import FusionGroup
from repro.ir.graph import Graph

__all__ = [
    "RENDERER_VERSION",
    "DEFAULT_TILE",
    "NativeUnsupported",
    "RenderedKernel",
    "render_group",
]

#: Bump on any change to emitted code; part of every kernel signature, so
#: a bump invalidates the on-disk .so cache wholesale.
RENDERER_VERSION = 1

#: Default GEMM register tile (MR, NR) when no autotuned choice is cached.
DEFAULT_TILE = (4, 4)

ENTRY = "duet_kernel"

_CTYPE = {
    "float32": "f32",
    "float64": "f64",
    "int32": "i32",
    "int64": "i64",
    "bool": "u8",
}

_FLOATS = ("float32", "float64")

_PRELUDE = """\
#include <math.h>
#include <string.h>
#include <stdint.h>

typedef float f32;
typedef double f64;
typedef int32_t i32;
typedef int64_t i64;
typedef unsigned char u8;

/* NaN-propagating min/max, matching np.maximum/np.minimum/np.max/np.min. */
static inline f32 duet_max_f32(f32 a, f32 b) {
    if (a != a) return a; if (b != b) return b; return a > b ? a : b;
}
static inline f32 duet_min_f32(f32 a, f32 b) {
    if (a != a) return a; if (b != b) return b; return a < b ? a : b;
}
static inline f64 duet_max_f64(f64 a, f64 b) {
    if (a != a) return a; if (b != b) return b; return a > b ? a : b;
}
static inline f64 duet_min_f64(f64 a, f64 b) {
    if (a != a) return a; if (b != b) return b; return a < b ? a : b;
}
/* np.clip: lower bound first, upper bound wins on an inverted range. */
static inline f32 duet_clip_f32(f32 x, f32 lo, f32 hi) {
    f32 w = x < lo ? lo : x; return w > hi ? hi : w;
}
static inline f64 duet_clip_f64(f64 x, f64 lo, f64 hi) {
    f64 w = x < lo ? lo : x; return w > hi ? hi : w;
}
static inline f32 duet_sigmoid_f32(f32 x) { return 1.0f / (1.0f + expf(-x)); }
static inline f64 duet_sigmoid_f64(f64 x) { return 1.0 / (1.0 + exp(-x)); }
"""


class NativeUnsupported(Exception):
    """The renderer cannot emit this group; fall back to NumPy."""


@dataclass(frozen=True)
class RenderedKernel:
    """One rendered-but-not-yet-compiled kernel."""

    name: str
    entry: str
    source: str
    n_args: int
    arg_dtypes: tuple[str, ...]
    out_shape: tuple[int, ...]
    out_dtype: str
    scratch_bytes: int
    exact: bool
    tunable: bool
    tile: tuple[int, int]


def _ct(dtype_name: str) -> str:
    ct = _CTYPE.get(dtype_name)
    if ct is None:
        raise NativeUnsupported(f"unsupported dtype {dtype_name!r}")
    return ct


def _strides(shape: Sequence[int]) -> list[int]:
    out = [1] * len(shape)
    for d in range(len(shape) - 2, -1, -1):
        out[d] = out[d + 1] * shape[d + 1]
    return out


def _index(ivars: Sequence[str], strides: Sequence[int]) -> str:
    terms = [
        v if s == 1 else f"{v}*{s}"
        for v, s in zip(ivars, strides)
        if s != 0
    ]
    return " + ".join(terms) if terms else "0"


def _bcast_strides(out_shape: Sequence[int], in_shape: Sequence[int]) -> list[int]:
    """Element strides of a right-aligned broadcast operand; 0 marks a
    broadcast dimension."""
    strides = _strides(in_shape)
    pad = len(out_shape) - len(in_shape)
    out: list[int] = [0] * pad
    for d, (extent, stride) in enumerate(zip(in_shape, strides)):
        if extent == 1 and out_shape[pad + d] != 1:
            out.append(0)
        else:
            out.append(stride)
    return out


def _scalar(value: float, ct: str) -> str:
    """A C constant equal to NumPy's cast of a Python float scalar.

    Emitted as a double literal cast to the target type, so the decimal
    is first rounded to binary64 (what Python holds) and then narrowed —
    exactly the path ``np.float32(0.044715)`` takes.  Going straight to
    an ``f`` suffix could double-round differently.
    """
    if ct in ("i32", "i64"):
        return str(int(value))
    return f"({ct})({float(value)!r})"


_MATH_FN = {
    "f32": {"sqrt": "sqrtf", "exp": "expf", "log": "logf", "tanh": "tanhf", "abs": "fabsf"},
    "f64": {"sqrt": "sqrt", "exp": "exp", "log": "log", "tanh": "tanh", "abs": "fabs"},
}


class _Writer:
    def __init__(self) -> None:
        self.lines: list[str] = []
        self.depth = 1
        self._loops = 0

    def w(self, text: str) -> None:
        self.lines.append("    " * self.depth + text)

    def open(self, text: str) -> None:
        self.w(text)
        self.depth += 1

    def close(self) -> None:
        self.depth -= 1
        self.w("}")

    def loop(self, extent: int) -> str:
        var = f"i{self._loops}"
        self._loops += 1
        self.open(f"for (long {var} = 0; {var} < {extent}; ++{var}) {{")
        return var

    def loops(self, shape: Sequence[int]) -> list[str]:
        return [self.loop(e) for e in shape]

    def close_n(self, n: int) -> None:
        for _ in range(n):
            self.close()


class _Renderer:
    def __init__(
        self,
        graph: Graph,
        group: FusionGroup,
        external: Sequence[str],
        tile: tuple[int, int],
    ) -> None:
        self.graph = graph
        self.group = group
        self.external = list(external)
        self.tile = tile
        self.w = _Writer()
        self.decls: list[str] = []
        self.scratch_off = 0
        self.ptr: dict[str, str] = {}  # node id -> C pointer expression
        self.exact = True
        self.tunable = False
        for k, nid in enumerate(self.external):
            ct = _ct(graph.node(nid).ty.dtype.name)
            self.decls.append(f"const {ct} *a{k} = (const {ct} *)args[{k}];")
            self.ptr[nid] = f"a{k}"

    # -- scratch -------------------------------------------------------
    def alloc(self, name: str, nelems: int, ct: str) -> str:
        size = {"f32": 4, "f64": 8, "i32": 4, "i64": 8, "u8": 1}[ct]
        off = self.scratch_off
        self.decls.append(f"{ct} *{name} = ({ct} *)(scratch + {off});")
        self.scratch_off += (nelems * size + 63) // 64 * 64
        return name

    # -- helpers -------------------------------------------------------
    def ty(self, nid: str):
        return self.graph.node(nid).ty

    def shape(self, nid: str) -> tuple[int, ...]:
        return tuple(self.ty(nid).shape)

    def ctype(self, nid: str) -> str:
        return _ct(self.ty(nid).dtype.name)

    def require_float(self, node) -> str:
        name = self.ty(node.id).dtype.name
        for src in node.inputs:
            if self.ty(src).dtype.name != name:
                raise NativeUnsupported(
                    f"{node.op}: mixed dtypes {self.ty(src).dtype.name} -> {name}"
                )
        if name not in _FLOATS:
            raise NativeUnsupported(f"{node.op}: non-float dtype {name}")
        return _ct(name)

    # -- top level -----------------------------------------------------
    def render(self) -> RenderedKernel:
        graph, group = self.graph, self.group
        out_ty = self.ty(group.output_id)
        out_ct = _ct(out_ty.dtype.name)
        self.decls.append(f"{out_ct} *outp = ({out_ct} *)out;")
        self.ptr[group.output_id] = "outp"
        tidx = 0
        for nid in group.node_ids:
            if nid == group.output_id:
                continue
            ct = self.ctype(nid)
            nelems = max(1, math.prod(self.shape(nid)))
            self.ptr[nid] = self.alloc(f"t{tidx}", nelems, ct)
            tidx += 1

        for nid in group.node_ids:
            node = graph.node(nid)
            emit = getattr(self, f"_op_{node.op}", None)
            if emit is None:
                raise NativeUnsupported(f"no native emitter for op {node.op!r}")
            from repro.compiler.native.policy import is_exact_op

            if not is_exact_op(node.op):
                self.exact = False
            self.w.open("{")
            self.w.w(f"/* {node.op} -> {nid} */")
            emit(node, self.ptr[nid])
            self.w.close()

        name = _sanitize(f"{group.output_id}")
        body = "\n".join(
            [_PRELUDE, f"void {ENTRY}(const void *const *args, void *out, void *scratch_v) {{"]
            + ["    (void)args; (void)scratch_v;"]
            + ["    char *scratch = (char *)scratch_v; (void)scratch;"]
            + ["    " + d for d in self.decls]
            + self.w.lines
            + ["}", ""]
        )
        return RenderedKernel(
            name=name,
            entry=ENTRY,
            source=body,
            n_args=len(self.external),
            arg_dtypes=tuple(self.ty(i).dtype.name for i in self.external),
            out_shape=tuple(out_ty.shape),
            out_dtype=out_ty.dtype.name,
            scratch_bytes=self.scratch_off,
            exact=self.exact,
            tunable=self.tunable,
            tile=self.tile,
        )

    # -- generic elementwise machinery ---------------------------------
    def _map(self, node, dst: str, expr_fn, in_strides=None) -> None:
        """Emit an elementwise/broadcast loop nest over the node's output
        shape.  ``expr_fn(values) -> str`` combines the loaded inputs."""
        w = self.w
        out_shape = self.shape(node.id) or (1,)
        ivars = w.loops(out_shape)
        vals = []
        for k, src in enumerate(node.inputs):
            ct = self.ctype(src)
            strides = (
                in_strides[k]
                if in_strides is not None
                else _bcast_strides(out_shape, self.shape(src) or (1,))
            )
            w.w(f"{ct} v{k} = {self.ptr[src]}[{_index(ivars, strides)}];")
            vals.append(f"v{k}")
        w.w(f"{dst}[{_index(ivars, _strides(out_shape))}] = {expr_fn(vals)};")
        w.close_n(len(out_shape))

    # -- elementwise ops -----------------------------------------------
    def _binary(self, node, dst: str, tmpl: str) -> None:
        ct = self.ctype(node.id)
        for src in node.inputs:
            if self.ctype(src) != ct:
                raise NativeUnsupported(f"{node.op}: mixed input dtypes")
        self._map(node, dst, lambda v: tmpl.format(a=v[0], b=v[1], t=ct))

    def _op_add(self, node, dst):
        self._binary(node, dst, "({a} + {b})")

    def _op_subtract(self, node, dst):
        self._binary(node, dst, "({a} - {b})")

    def _op_multiply(self, node, dst):
        self._binary(node, dst, "({a} * {b})")

    def _op_divide(self, node, dst):
        if self.ctype(node.id) not in ("f32", "f64"):
            raise NativeUnsupported("divide: integer true-division promotes")
        self._binary(node, dst, "({a} / {b})")

    def _minmax(self, node, dst, which: str) -> None:
        ct = self.ctype(node.id)
        if ct in ("f32", "f64"):
            self._binary(node, dst, f"duet_{which}_{ct}({{a}}, {{b}})")
        else:
            op = ">" if which == "max" else "<"
            self._binary(node, dst, f"({{a}} {op} {{b}} ? {{a}} : {{b}})")

    def _op_maximum(self, node, dst):
        self._minmax(node, dst, "max")

    def _op_minimum(self, node, dst):
        self._minmax(node, dst, "min")

    def _unary(self, node, dst, tmpl: str) -> None:
        self._map(node, dst, lambda v: tmpl.format(x=v[0]))

    def _op_relu(self, node, dst):
        ct = self.require_float(node)
        self._unary(node, dst, f"duet_max_{ct}({{x}}, 0)")

    def _op_negative(self, node, dst):
        self._unary(node, dst, "(-{x})")

    def _op_abs(self, node, dst):
        ct = self.ctype(node.id)
        if ct in ("f32", "f64"):
            self._unary(node, dst, f"{_MATH_FN[ct]['abs']}({{x}})")
        else:
            self._unary(node, dst, "({x} < 0 ? -{x} : {x})")

    def _op_sqrt(self, node, dst):
        ct = self.require_float(node)
        self._unary(node, dst, f"{_MATH_FN[ct]['sqrt']}({{x}})")

    def _op_exp(self, node, dst):
        ct = self.require_float(node)
        self._unary(node, dst, f"{_MATH_FN[ct]['exp']}({{x}})")

    def _op_log(self, node, dst):
        ct = self.require_float(node)
        self._unary(node, dst, f"{_MATH_FN[ct]['log']}({{x}})")

    def _op_sigmoid(self, node, dst):
        ct = self.require_float(node)
        self._unary(node, dst, f"duet_sigmoid_{ct}({{x}})")

    def _op_tanh(self, node, dst):
        ct = self.require_float(node)
        self._unary(node, dst, f"{_MATH_FN[ct]['tanh']}({{x}})")

    def _op_gelu(self, node, dst):
        ct = self.require_float(node)
        tanh = _MATH_FN[ct]["tanh"]
        half, c0, c1 = _scalar(0.5, ct), _scalar(0.7978845608028654, ct), _scalar(0.044715, ct)
        one = "1.0f" if ct == "f32" else "1.0"
        self._unary(
            node,
            dst,
            f"{half} * {{x}} * ({one} + {tanh}({c0} * ({{x}} + {c1} * {{x}}*{{x}}*{{x}})))",
        )

    def _op_identity(self, node, dst):
        self._memcpy(node.inputs[0], dst, self.shape(node.id))

    def _op_leaky_relu(self, node, dst):
        ct = self.require_float(node)
        alpha = _scalar(float(node.attrs.get("alpha", 0.01)), ct)
        self._unary(node, dst, f"({{x}} >= 0 ? {{x}} : {alpha} * {{x}})")

    def _op_clip(self, node, dst):
        ct = self.require_float(node)
        lo = _scalar(float(node.attrs["min"]), ct)
        hi = _scalar(float(node.attrs["max"]), ct)
        self._unary(node, dst, f"duet_clip_{ct}({{x}}, {lo}, {hi})")

    def _op_bias_add(self, node, dst):
        data, bias = node.inputs
        out_shape = self.shape(node.id)
        axis = int(node.attrs.get("axis", -1))
        if axis < 0:
            axis += len(out_shape)
        bias_strides = [0] * len(out_shape)
        bias_strides[axis] = 1
        self._map(
            node,
            dst,
            lambda v: f"({v[0]} + {v[1]})",
            in_strides=[_strides(out_shape), bias_strides],
        )

    def _op_batch_norm(self, node, dst):
        data, gamma, beta, mean, var = node.inputs
        ct = self.require_float(node)
        shape = self.shape(node.id)
        c = shape[1]
        eps = _scalar(float(node.attrs.get("epsilon", 1e-5)), ct)
        sqrt = _MATH_FN[ct]["sqrt"]
        sc = self.alloc(f"bn_sc_{_sanitize(node.id)}", c, ct)
        sh = self.alloc(f"bn_sh_{_sanitize(node.id)}", c, ct)
        w = self.w
        g, b, m, v = (self.ptr[i] for i in (gamma, beta, mean, var))
        cv = w.loop(c)
        # Mirrors the reference: scale = gamma/sqrt(var+eps);
        # shift = beta - mean*gamma/sqrt(var+eps) (sqrt evaluated twice,
        # products left-associated) so the result is bit-identical.
        w.w(f"{sc}[{cv}] = {g}[{cv}] / {sqrt}({v}[{cv}] + {eps});")
        w.w(
            f"{sh}[{cv}] = {b}[{cv}] - {m}[{cv}] * {g}[{cv}] / "
            f"{sqrt}({v}[{cv}] + {eps});"
        )
        w.close()
        ivars = w.loops(shape)
        idx = _index(ivars, _strides(shape))
        w.w(f"{dst}[{idx}] = {self.ptr[data]}[{idx}] * {sc}[{ivars[1]}] + {sh}[{ivars[1]}];")
        w.close_n(len(shape))

    # -- GEMM family ----------------------------------------------------
    def _emit_gemm(
        self,
        dst: str,
        a: str,
        b: str,
        ct: str,
        m: int,
        n: int,
        k: int,
        b_layout: str,
        a_off: str = "0",
        b_off: str = "0",
        d_off: str = "0",
    ) -> None:
        """Register-blocked GEMM: dst[m,n] (+offsets) = sum_k a[m,k]*b.

        ``b_layout``: ``"nk"`` reads ``b[n*K+k]`` (dense's [out,in]
        weight), ``"kn"`` reads ``b[k*N+n]`` (plain matmul).  The k loop
        is sequential per output element for every tile, so numerics do
        not depend on the tile choice.
        """
        self.tunable = True
        mr, nr = self.tile
        w = self.w
        w.open(f"for (long m0 = 0; m0 < {m}; m0 += {mr}) {{")
        w.w(f"long mb = {m} - m0 < {mr} ? {m} - m0 : {mr};")
        w.open(f"for (long n0 = 0; n0 < {n}; n0 += {nr}) {{")
        w.w(f"long nb = {n} - n0 < {nr} ? {n} - n0 : {nr};")
        w.w(f"{ct} acc[{mr * nr}];")
        w.w(f"for (long z = 0; z < {mr * nr}; ++z) acc[z] = 0;")
        w.open(f"for (long k = 0; k < {k}; ++k) {{")
        w.open("for (long mi = 0; mi < mb; ++mi) {")
        w.w(f"{ct} av = {a}[{a_off} + (m0 + mi) * {k} + k];")
        if b_layout == "nk":
            bexpr = f"{b}[{b_off} + (n0 + ni) * {k} + k]"
        else:
            bexpr = f"{b}[{b_off} + k * {n} + n0 + ni]"
        w.open("for (long ni = 0; ni < nb; ++ni) {")
        w.w(f"acc[mi * {nr} + ni] += av * {bexpr};")
        w.close()
        w.close()
        w.close()
        w.open("for (long mi = 0; mi < mb; ++mi) {")
        w.open("for (long ni = 0; ni < nb; ++ni) {")
        w.w(f"{dst}[{d_off} + (m0 + mi) * {n} + n0 + ni] = acc[mi * {nr} + ni];")
        w.close()
        w.close()
        w.close()
        w.close()

    def _op_dense(self, node, dst):
        ct = self.require_float(node)
        data, weight = node.inputs
        m, k = self.shape(data)
        n = self.shape(weight)[0]
        self._emit_gemm(dst, self.ptr[data], self.ptr[weight], ct, m, n, k, "nk")

    def _op_matmul(self, node, dst):
        ct = self.require_float(node)
        a, b = node.inputs
        m, k = self.shape(a)
        n = self.shape(b)[1]
        self._emit_gemm(dst, self.ptr[a], self.ptr[b], ct, m, n, k, "kn")

    def _op_batch_matmul(self, node, dst):
        ct = self.require_float(node)
        a, b = node.inputs
        bsz, m, k = self.shape(a)
        n = self.shape(b)[2]
        bv = self.w.loop(bsz)
        self._emit_gemm(
            dst,
            self.ptr[a],
            self.ptr[b],
            ct,
            m,
            n,
            k,
            "kn",
            a_off=f"{bv} * {m * k}",
            b_off=f"{bv} * {k * n}",
            d_off=f"{bv} * {m * n}",
        )
        self.w.close()

    # -- convolutions ---------------------------------------------------
    def _conv_attrs(self, node) -> tuple[int, int, int, int]:
        sh, sw = (int(s) for s in node.attrs.get("strides", (1, 1)))
        ph, pw = (int(p) for p in node.attrs.get("padding", (0, 0)))
        return sh, sw, ph, pw

    def _op_conv2d(self, node, dst):
        # im2col into scratch, then the register-blocked GEMM:
        # out[n] = weight[OC, C*KH*KW] @ col[C*KH*KW, OH*OW].  The
        # per-output k accumulation order (ic, kh, kw) matches the naive
        # triple loop; padding contributes exact +0.0 terms.
        ct = self.require_float(node)
        data, weight = node.inputs
        n, c, h, wd = self.shape(data)
        oc, _, kh, kw = self.shape(weight)
        _, _, oh, ow = self.shape(node.id)
        sh, sw, ph, pw = self._conv_attrs(node)
        kdim, ndim = c * kh * kw, oh * ow
        col = self.alloc(f"col_{_sanitize(node.id)}", kdim * ndim, ct)
        w = self.w
        x, wt = self.ptr[data], self.ptr[weight]
        nv = w.loop(n)
        icv, khv, kwv = w.loops((c, kh, kw))
        w.w(f"long r = (({icv} * {kh} + {khv}) * {kw} + {kwv}) * {ndim};")
        ohv = w.loop(oh)
        w.w(f"long ih = {ohv} * {sh} - {ph} + {khv};")
        w.open(f"if (ih < 0 || ih >= {h}) {{")
        w.open(f"for (long q = 0; q < {ow}; ++q) {{")
        w.w(f"{col}[r + {ohv} * {ow} + q] = 0;")
        w.close()
        w.w("} else {")
        w.depth += 1
        w.open(f"for (long q = 0; q < {ow}; ++q) {{")
        w.w(f"long iw = q * {sw} - {pw} + {kwv};")
        w.w(
            f"{col}[r + {ohv} * {ow} + q] = (iw >= 0 && iw < {wd}) ? "
            f"{x}[(({nv} * {c} + {icv}) * {h} + ih) * {wd} + iw] : 0;"
        )
        w.close()
        w.close()
        w.close_n(4)
        self._emit_gemm(
            dst,
            wt,
            col,
            ct,
            oc,
            ndim,
            kdim,
            "kn",
            d_off=f"{nv} * {oc * ndim}",
        )
        w.close()

    def _op_depthwise_conv2d(self, node, dst):
        ct = self.require_float(node)
        data, weight = node.inputs
        n, c, h, wd = self.shape(data)
        _, _, kh, kw = self.shape(weight)
        _, _, oh, ow = self.shape(node.id)
        sh, sw, ph, pw = self._conv_attrs(node)
        w = self.w
        x, wt = self.ptr[data], self.ptr[weight]
        nv, cv, ohv, owv = w.loops((n, c, oh, ow))
        w.w(f"{ct} acc = 0;")
        khv, kwv = w.loops((kh, kw))
        w.w(f"long ih = {ohv} * {sh} - {ph} + {khv};")
        w.w(f"long iw = {owv} * {sw} - {pw} + {kwv};")
        w.open(f"if (ih >= 0 && ih < {h} && iw >= 0 && iw < {wd}) {{")
        w.w(
            f"acc += {x}[(({nv} * {c} + {cv}) * {h} + ih) * {wd} + iw] * "
            f"{wt}[({cv} * {kh} + {khv}) * {kw} + {kwv}];"
        )
        w.close()
        w.close_n(2)
        w.w(f"{dst}[(({nv} * {c} + {cv}) * {oh} + {ohv}) * {ow} + {owv}] = acc;")
        w.close_n(4)

    # -- pooling --------------------------------------------------------
    def _pool_attrs(self, node):
        k0, k1 = (int(v) for v in node.attrs.get("pool_size", (2, 2)))
        st = node.attrs.get("strides", (k0, k1))
        sh, sw = (int(v) for v in st)
        ph, pw = (int(v) for v in node.attrs.get("padding", (0, 0)))
        return k0, k1, sh, sw, ph, pw

    def _op_max_pool2d(self, node, dst):
        ct = self.require_float(node)
        data = node.inputs[0]
        n, c, h, wd = self.shape(data)
        _, _, oh, ow = self.shape(node.id)
        k0, k1, sh, sw, ph, pw = self._pool_attrs(node)
        w = self.w
        x = self.ptr[data]
        inf = "INFINITY"
        nv, cv, ohv, owv = w.loops((n, c, oh, ow))
        w.w(f"{ct} m = -{inf};")
        khv, kwv = w.loops((k0, k1))
        w.w(f"long ih = {ohv} * {sh} - {ph} + {khv};")
        w.w(f"long iw = {owv} * {sw} - {pw} + {kwv};")
        w.open(f"if (ih >= 0 && ih < {h} && iw >= 0 && iw < {wd}) {{")
        w.w(f"m = duet_max_{ct}(m, {x}[(({nv} * {c} + {cv}) * {h} + ih) * {wd} + iw]);")
        w.close()
        w.close_n(2)
        w.w(f"{dst}[(({nv} * {c} + {cv}) * {oh} + {ohv}) * {ow} + {owv}] = m;")
        w.close_n(4)

    def _op_avg_pool2d(self, node, dst):
        ct = self.require_float(node)
        data = node.inputs[0]
        n, c, h, wd = self.shape(data)
        _, _, oh, ow = self.shape(node.id)
        k0, k1, sh, sw, ph, pw = self._pool_attrs(node)
        w = self.w
        x = self.ptr[data]
        nv, cv, ohv, owv = w.loops((n, c, oh, ow))
        w.w(f"{ct} acc = 0;")
        khv, kwv = w.loops((k0, k1))
        w.w(f"long ih = {ohv} * {sh} - {ph} + {khv};")
        w.w(f"long iw = {owv} * {sw} - {pw} + {kwv};")
        w.open(f"if (ih >= 0 && ih < {h} && iw >= 0 && iw < {wd}) {{")
        w.w(f"acc += {x}[(({nv} * {c} + {cv}) * {h} + ih) * {wd} + iw];")
        w.close()
        w.close_n(2)
        # Zero padding contributes zeros; the mean divides by the full
        # window size, matching the padded reference.
        w.w(
            f"{dst}[(({nv} * {c} + {cv}) * {oh} + {ohv}) * {ow} + {owv}] = "
            f"acc / ({ct}){k0 * k1};"
        )
        w.close_n(4)

    def _op_global_avg_pool2d(self, node, dst):
        ct = self.require_float(node)
        data = node.inputs[0]
        n, c, h, wd = self.shape(data)
        w = self.w
        x = self.ptr[data]
        nv, cv = w.loops((n, c))
        w.w(f"{ct} acc = 0;")
        hv, wv = w.loops((h, wd))
        w.w(f"acc += {x}[(({nv} * {c} + {cv}) * {h} + {hv}) * {wd} + {wv}];")
        w.close_n(2)
        w.w(f"{dst}[{nv} * {c} + {cv}] = acc / ({ct}){h * wd};")
        w.close_n(2)

    # -- reductions -----------------------------------------------------
    def _axis_split(self, node) -> tuple[int, int, int]:
        shape = self.shape(node.inputs[0])
        axis = int(node.attrs.get("axis", -1))
        if axis < 0:
            axis += len(shape)
        outer = math.prod(shape[:axis]) if axis else 1
        inner = math.prod(shape[axis + 1:]) if axis + 1 < len(shape) else 1
        return outer, shape[axis], inner

    def _op_softmax(self, node, dst):
        ct = self.require_float(node)
        outer, ax, inner = self._axis_split(node)
        exp = _MATH_FN[ct]["exp"]
        w = self.w
        x = self.ptr[node.inputs[0]]
        ov, iv = w.loop(outer), w.loop(inner)
        w.w(f"long base = {ov} * {ax * inner} + {iv};")
        w.w(f"{ct} m = {x}[base];")
        w.open(f"for (long k = 1; k < {ax}; ++k) {{")
        w.w(f"m = duet_max_{ct}(m, {x}[base + k * {inner}]);")
        w.close()
        w.w(f"{ct} s = 0;")
        w.open(f"for (long k = 0; k < {ax}; ++k) {{")
        w.w(f"{ct} e = {exp}({x}[base + k * {inner}] - m);")
        w.w(f"{dst}[base + k * {inner}] = e;")
        w.w("s += e;")
        w.close()
        w.open(f"for (long k = 0; k < {ax}; ++k) {{")
        w.w(f"{dst}[base + k * {inner}] /= s;")
        w.close()
        w.close_n(2)

    def _op_log_softmax(self, node, dst):
        ct = self.require_float(node)
        outer, ax, inner = self._axis_split(node)
        exp, log = _MATH_FN[ct]["exp"], _MATH_FN[ct]["log"]
        w = self.w
        x = self.ptr[node.inputs[0]]
        ov, iv = w.loop(outer), w.loop(inner)
        w.w(f"long base = {ov} * {ax * inner} + {iv};")
        w.w(f"{ct} m = {x}[base];")
        w.open(f"for (long k = 1; k < {ax}; ++k) {{")
        w.w(f"m = duet_max_{ct}(m, {x}[base + k * {inner}]);")
        w.close()
        w.w(f"{ct} s = 0;")
        w.open(f"for (long k = 0; k < {ax}; ++k) {{")
        w.w(f"s += {exp}({x}[base + k * {inner}] - m);")
        w.close()
        w.w(f"{ct} ls = {log}(s);")
        w.open(f"for (long k = 0; k < {ax}; ++k) {{")
        w.w(f"{dst}[base + k * {inner}] = ({x}[base + k * {inner}] - m) - ls;")
        w.close()
        w.close_n(2)

    def _op_layer_norm(self, node, dst):
        ct = self.require_float(node)
        data, gamma, beta = node.inputs
        shape = self.shape(data)
        d = shape[-1]
        rows = math.prod(shape[:-1]) if len(shape) > 1 else 1
        eps = _scalar(float(node.attrs.get("epsilon", 1e-5)), ct)
        sqrt = _MATH_FN[ct]["sqrt"]
        w = self.w
        x, g, b = (self.ptr[i] for i in (data, gamma, beta))
        rv = w.loop(rows)
        w.w(f"{ct} s = 0;")
        w.open(f"for (long k = 0; k < {d}; ++k) {{")
        w.w(f"s += {x}[{rv} * {d} + k];")
        w.close()
        w.w(f"{ct} mean = s / ({ct}){d};")
        w.w(f"{ct} ss = 0;")
        w.open(f"for (long k = 0; k < {d}; ++k) {{")
        w.w(f"{ct} dcent = {x}[{rv} * {d} + k] - mean;")
        w.w("ss += dcent * dcent;")
        w.close()
        w.w(f"{ct} inv = {sqrt}(ss / ({ct}){d} + {eps});")
        w.open(f"for (long k = 0; k < {d}; ++k) {{")
        w.w(
            f"{dst}[{rv} * {d} + k] = ({x}[{rv} * {d} + k] - mean) / inv * "
            f"{g}[k] + {b}[k];"
        )
        w.close()
        w.close()

    def _reduce(self, node, dst, kind: str) -> None:
        ct = self.ctype(node.inputs[0])
        if kind in ("sum", "mean") and ct not in ("f32", "f64"):
            raise NativeUnsupported(f"reduce_{kind}: non-float dtype")
        outer, ax, inner = self._axis_split(node)
        w = self.w
        x = self.ptr[node.inputs[0]]
        ov, iv = w.loop(outer), w.loop(inner)
        w.w(f"long base = {ov} * {ax * inner} + {iv};")
        if kind in ("sum", "mean"):
            w.w(f"{ct} acc = 0;")
            w.open(f"for (long k = 0; k < {ax}; ++k) {{")
            w.w(f"acc += {x}[base + k * {inner}];")
            w.close()
            if kind == "mean":
                w.w(f"acc /= ({ct}){ax};")
            w.w(f"{dst}[{ov} * {inner} + {iv}] = acc;")
        else:
            w.w(f"{ct} acc = {x}[base];")
            w.open(f"for (long k = 1; k < {ax}; ++k) {{")
            if ct in ("f32", "f64"):
                w.w(f"acc = duet_{kind}_{ct}(acc, {x}[base + k * {inner}]);")
            else:
                op = ">" if kind == "max" else "<"
                w.w(f"{ct} v = {x}[base + k * {inner}];")
                w.w(f"acc = v {op} acc ? v : acc;")
            w.close()
            w.w(f"{dst}[{ov} * {inner} + {iv}] = acc;")
        w.close_n(2)

    def _op_reduce_sum(self, node, dst):
        self._reduce(node, dst, "sum")

    def _op_reduce_mean(self, node, dst):
        self._reduce(node, dst, "mean")

    def _op_reduce_max(self, node, dst):
        self._reduce(node, dst, "max")

    def _op_reduce_min(self, node, dst):
        self._reduce(node, dst, "min")

    def _op_argmax(self, node, dst):
        ct = self.ctype(node.inputs[0])
        outer, ax, inner = self._axis_split(node)
        w = self.w
        x = self.ptr[node.inputs[0]]
        ov, iv = w.loop(outer), w.loop(inner)
        w.w(f"long base = {ov} * {ax * inner} + {iv};")
        w.w(f"{ct} best = {x}[base];")
        w.w("long bi = 0;")
        w.open(f"for (long k = 1; k < {ax}; ++k) {{")
        w.w(f"{ct} v = {x}[base + k * {inner}];")
        # np.argmax: NaN ranks above everything; first NaN wins, and the
        # scan never leaves a NaN best.
        w.open("if (best == best && (v != v || v > best)) {")
        w.w("best = v; bi = k;")
        w.close()
        w.close()
        w.w(f"{dst}[{ov} * {inner} + {iv}] = (i64)bi;")
        w.close_n(2)

    # -- data movement --------------------------------------------------
    def _memcpy(self, src: str, dst: str, shape: Sequence[int]) -> None:
        ct = _ct(self.ty(src).dtype.name)
        size = {"f32": 4, "f64": 8, "i32": 4, "i64": 8, "u8": 1}[ct]
        nbytes = max(1, math.prod(shape)) * size
        self.w.w(f"memcpy({dst}, {self.ptr[src]}, {nbytes});")

    def _op_reshape(self, node, dst):
        self._memcpy(node.inputs[0], dst, self.shape(node.id))

    def _op_flatten(self, node, dst):
        self._memcpy(node.inputs[0], dst, self.shape(node.id))

    def _op_transpose(self, node, dst):
        data = node.inputs[0]
        in_shape = self.shape(data)
        axes = node.attrs.get("axes")
        if axes is None:
            perm = tuple(reversed(range(len(in_shape))))
        else:
            perm = tuple(int(a) for a in axes)
        out_shape = self.shape(node.id)
        in_strides = _strides(in_shape)
        w = self.w
        ivars = w.loops(out_shape)
        src_idx = _index(ivars, [in_strides[p] for p in perm])
        w.w(f"{dst}[{_index(ivars, _strides(out_shape))}] = {self.ptr[data]}[{src_idx}];")
        w.close_n(len(out_shape))

    def _op_concat(self, node, dst):
        out_shape = self.shape(node.id)
        axis = int(node.attrs.get("axis", 0))
        if axis < 0:
            axis += len(out_shape)
        out_strides = _strides(out_shape)
        w = self.w
        offset = 0
        for src in node.inputs:
            s_shape = self.shape(src)
            ivars = w.loops(s_shape)
            dst_terms = []
            for d, v in enumerate(ivars):
                coord = f"({v} + {offset})" if d == axis else v
                if out_strides[d] == 1:
                    dst_terms.append(coord)
                else:
                    dst_terms.append(f"{coord} * {out_strides[d]}")
            w.w(
                f"{dst}[{' + '.join(dst_terms)}] = "
                f"{self.ptr[src]}[{_index(ivars, _strides(s_shape))}];"
            )
            w.close_n(len(s_shape))
            offset += s_shape[axis]

    def _op_strided_slice(self, node, dst):
        data = node.inputs[0]
        in_shape = self.shape(data)
        out_shape = self.shape(node.id)
        begin = tuple(int(b) for b in node.attrs["begin"])
        in_strides = _strides(in_shape)
        w = self.w
        ivars = w.loops(out_shape)
        src_terms = [
            f"({v} + {b}) * {s}" if s != 1 else f"({v} + {b})"
            for v, b, s in zip(ivars, begin, in_strides)
        ]
        w.w(
            f"{dst}[{_index(ivars, _strides(out_shape))}] = "
            f"{self.ptr[data]}[{' + '.join(src_terms)}];"
        )
        w.close_n(len(out_shape))

    def _op_reverse(self, node, dst):
        data = node.inputs[0]
        shape = self.shape(node.id)
        axis = int(node.attrs.get("axis", 1))
        if axis < 0:
            axis += len(shape)
        strides = _strides(shape)
        w = self.w
        ivars = w.loops(shape)
        src_terms = []
        for d, v in enumerate(ivars):
            coord = f"({shape[d] - 1} - {v})" if d == axis else v
            src_terms.append(coord if strides[d] == 1 else f"{coord} * {strides[d]}")
        w.w(
            f"{dst}[{_index(ivars, strides)}] = "
            f"{self.ptr[data]}[{' + '.join(src_terms)}];"
        )
        w.close_n(len(shape))

    def _op_embedding(self, node, dst):
        table, indices = node.inputs
        vocab, dim = self.shape(table)
        idx_ty = self.ty(indices).dtype.name
        if idx_ty not in ("int32", "int64"):
            raise NativeUnsupported("embedding: non-integer indices")
        flat = max(1, math.prod(self.shape(indices)))
        w = self.w
        sv = w.loop(flat)
        w.w(f"long ix = (long){self.ptr[indices]}[{sv}];")
        w.w(f"if (ix < 0) ix += {vocab};")
        w.w(f"if (ix < 0) ix = 0; if (ix >= {vocab}) ix = {vocab - 1};")
        dv = w.loop(dim)
        w.w(f"{dst}[{sv} * {dim} + {dv}] = {self.ptr[table]}[ix * {dim} + {dv}];")
        w.close_n(2)

    # -- recurrent ------------------------------------------------------
    def _rnn_common(self, node):
        ct = self.require_float(node)
        data, w_ih, w_hh, bias = node.inputs
        b, t, i = self.shape(data)
        hidden = int(node.attrs["hidden_size"])
        return_seq = bool(node.attrs.get("return_sequences", True))
        return ct, data, w_ih, w_hh, bias, b, t, i, hidden, return_seq

    def _op_lstm(self, node, dst):
        ct, data, w_ih, w_hh, bias, b, t, i, hh, return_seq = self._rnn_common(node)
        tanh, sig = _MATH_FN[ct]["tanh"], f"duet_sigmoid_{ct}"
        tag = _sanitize(node.id)
        hbuf = self.alloc(f"lstm_h_{tag}", b * hh, ct)
        cbuf = self.alloc(f"lstm_c_{tag}", b * hh, ct)
        gbuf = self.alloc(f"lstm_g_{tag}", b * 4 * hh, ct)
        x, wih, whh, bp = (self.ptr[n] for n in (data, w_ih, w_hh, bias))
        w = self.w
        size = 4 if ct == "f32" else 8
        w.w(f"memset({hbuf}, 0, {b * hh * size});")
        w.w(f"memset({cbuf}, 0, {b * hh * size});")
        w.open(f"for (long t = 0; t < {t}; ++t) {{")
        # gates[b, 4H] = x[b,t,:] @ w_ih.T + h @ w_hh.T + bias
        w.open(f"for (long bb = 0; bb < {b}; ++bb) {{")
        w.open(f"for (long g = 0; g < {4 * hh}; ++g) {{")
        w.w(f"{ct} acc = 0;")
        w.open(f"for (long q = 0; q < {i}; ++q) {{")
        w.w(f"acc += {x}[(bb * {t} + t) * {i} + q] * {wih}[g * {i} + q];")
        w.close()
        w.open(f"for (long q = 0; q < {hh}; ++q) {{")
        w.w(f"acc += {hbuf}[bb * {hh} + q] * {whh}[g * {hh} + q];")
        w.close()
        w.w(f"{gbuf}[bb * {4 * hh} + g] = acc + {bp}[g];")
        w.close()
        w.close()
        w.open(f"for (long bb = 0; bb < {b}; ++bb) {{")
        w.open(f"for (long u = 0; u < {hh}; ++u) {{")
        w.w(f"{ct} gi = {sig}({gbuf}[bb * {4 * hh} + u]);")
        w.w(f"{ct} gf = {sig}({gbuf}[bb * {4 * hh} + {hh} + u]);")
        w.w(f"{ct} gg = {tanh}({gbuf}[bb * {4 * hh} + {2 * hh} + u]);")
        w.w(f"{ct} go = {sig}({gbuf}[bb * {4 * hh} + {3 * hh} + u]);")
        w.w(f"{ct} cn = gf * {cbuf}[bb * {hh} + u] + gi * gg;")
        w.w(f"{cbuf}[bb * {hh} + u] = cn;")
        w.w(f"{ct} hn = go * {tanh}(cn);")
        w.w(f"{hbuf}[bb * {hh} + u] = hn;")
        if return_seq:
            w.w(f"{dst}[(bb * {t} + t) * {hh} + u] = hn;")
        w.close()
        w.close()
        w.close()
        if not return_seq:
            self.w.w(f"memcpy({dst}, {hbuf}, {b * hh * size});")

    def _op_gru(self, node, dst):
        ct, data, w_ih, w_hh, bias, b, t, i, hh, return_seq = self._rnn_common(node)
        tanh, sig = _MATH_FN[ct]["tanh"], f"duet_sigmoid_{ct}"
        tag = _sanitize(node.id)
        hbuf = self.alloc(f"gru_h_{tag}", b * hh, ct)
        xg = self.alloc(f"gru_x_{tag}", b * 3 * hh, ct)
        hg = self.alloc(f"gru_hg_{tag}", b * 3 * hh, ct)
        x, wih, whh, bp = (self.ptr[n] for n in (data, w_ih, w_hh, bias))
        w = self.w
        size = 4 if ct == "f32" else 8
        w.w(f"memset({hbuf}, 0, {b * hh * size});")
        w.open(f"for (long t = 0; t < {t}; ++t) {{")
        w.open(f"for (long bb = 0; bb < {b}; ++bb) {{")
        w.open(f"for (long g = 0; g < {3 * hh}; ++g) {{")
        w.w(f"{ct} ax = 0;")
        w.open(f"for (long q = 0; q < {i}; ++q) {{")
        w.w(f"ax += {x}[(bb * {t} + t) * {i} + q] * {wih}[g * {i} + q];")
        w.close()
        w.w(f"{xg}[bb * {3 * hh} + g] = ax;")
        w.w(f"{ct} ah = 0;")
        w.open(f"for (long q = 0; q < {hh}; ++q) {{")
        w.w(f"ah += {hbuf}[bb * {hh} + q] * {whh}[g * {hh} + q];")
        w.close()
        w.w(f"{hg}[bb * {3 * hh} + g] = ah;")
        w.close()
        w.close()
        w.open(f"for (long bb = 0; bb < {b}; ++bb) {{")
        w.open(f"for (long u = 0; u < {hh}; ++u) {{")
        w.w(f"{ct} r = {sig}({xg}[bb * {3 * hh} + u] + {hg}[bb * {3 * hh} + u] + {bp}[u]);")
        w.w(
            f"{ct} z = {sig}({xg}[bb * {3 * hh} + {hh} + u] + "
            f"{hg}[bb * {3 * hh} + {hh} + u] + {bp}[{hh} + u]);"
        )
        w.w(
            f"{ct} nn = {tanh}({xg}[bb * {3 * hh} + {2 * hh} + u] + "
            f"r * {hg}[bb * {3 * hh} + {2 * hh} + u] + {bp}[{2 * hh} + u]);"
        )
        one = "1.0f" if ct == "f32" else "1.0"
        w.w(f"{ct} hn = ({one} - z) * nn + z * {hbuf}[bb * {hh} + u];")
        w.w(f"{hbuf}[bb * {hh} + u] = hn;")
        if return_seq:
            w.w(f"{dst}[(bb * {t} + t) * {hh} + u] = hn;")
        w.close()
        w.close()
        w.close()
        if not return_seq:
            self.w.w(f"memcpy({dst}, {hbuf}, {b * hh * size});")


def _sanitize(name: str) -> str:
    return re.sub(r"\W", "_", name)


def render_group(
    graph: Graph,
    group: FusionGroup,
    external: Sequence[str],
    tile: tuple[int, int] = DEFAULT_TILE,
) -> RenderedKernel:
    """Render one fusion group to C; raises :class:`NativeUnsupported`
    when any member op/dtype falls outside the renderer's inventory."""
    for nid in group.node_ids:
        _ct(graph.node(nid).ty.dtype.name)  # validate dtypes up front
    return _Renderer(graph, group, external, tile).render()
