"""Signature-keyed on-disk cache of compiled native kernels.

Every rendered kernel gets a stable signature — a SHA-256 over the
renderer version, the GEMM tile variant, and a *locally renamed*
description of the fusion group (op sequence, sorted attrs, input/output
shapes and dtypes).  Local renaming means two structurally identical
groups from differently-named graphs share one cache entry, and the
signature deliberately excludes the target name so a "cpu" and a "gpu"
placement of the same kernel dedupe to one shared object.

Layout under the cache root::

    <sig>.c          rendered source (kept for debugging / goldens)
    <sig>.so         compiled shared object (atomically renamed in)
    <base>.meta.json autotune choice + timings for a tunable kernel

Corrupted or truncated ``.so`` entries are evicted and rebuilt on load
failure rather than crashing; writes go through a temp file + ``rename``
so a killed process never leaves a half-written entry behind.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.compiler.fusion import FusionGroup
from repro.compiler.native.renderer import RENDERER_VERSION
from repro.ir.graph import Graph

__all__ = [
    "CacheStats",
    "NativeCache",
    "default_cache_dir",
    "kernel_signature",
]

ENV_CACHE_DIR = "REPRO_NATIVE_CACHE_DIR"


def kernel_signature(
    graph: Graph,
    group: FusionGroup,
    external: Sequence[str],
    renderer_version: int = RENDERER_VERSION,
) -> str:
    """Stable base signature of a fusion group (tile-independent).

    Node ids are renamed to local indices (``e<k>`` for the k-th external
    input, ``n<k>`` for the k-th member) so the signature depends only on
    group *structure*, never on the ids a particular graph happened to
    assign.
    """
    local: dict[str, str] = {nid: f"e{k}" for k, nid in enumerate(external)}
    for k, nid in enumerate(group.node_ids):
        local[nid] = f"n{k}"
    parts = [f"rv{renderer_version}"]
    for k, nid in enumerate(external):
        ty = graph.node(nid).ty
        parts.append(f"e{k}={ty.dtype.name}[{','.join(map(str, ty.shape))}]")
    for nid in group.node_ids:
        node = graph.node(nid)
        ty = node.ty
        attrs = ",".join(f"{k}={v!r}" for k, v in sorted(node.attrs.items()))
        ins = ",".join(local[i] for i in node.inputs)
        parts.append(
            f"{node.op}({ins};{attrs})->{ty.dtype.name}"
            f"[{','.join(map(str, ty.shape))}]"
        )
    if group.output_id != group.node_ids[-1]:
        parts.append(f"out={local[group.output_id]}")
    return hashlib.sha256("|".join(parts).encode()).hexdigest()[:32]


def variant_signature(base_sig: str, tile: tuple[int, int]) -> str:
    return f"{base_sig}_t{tile[0]}x{tile[1]}"


@dataclass
class CacheStats:
    """Counters for cache behaviour; the property tests and the warm-run
    zero-compile assertion read these."""

    compiles: int = 0
    disk_hits: int = 0
    memo_hits: int = 0
    evictions: int = 0
    fallbacks: int = 0
    autotunes: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "compiles": self.compiles,
            "disk_hits": self.disk_hits,
            "memo_hits": self.memo_hits,
            "evictions": self.evictions,
            "fallbacks": self.fallbacks,
            "autotunes": self.autotunes,
        }


def default_cache_dir() -> Path:
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "native"


@dataclass
class NativeCache:
    """One cache root; process-wide loaded-library memo rides on top of
    the on-disk store (a ``CDLL`` must stay referenced for the life of
    any kernel that uses it)."""

    root: Path = field(default_factory=default_cache_dir)
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self._loaded: dict[str, object] = {}

    # -- paths ---------------------------------------------------------
    def source_path(self, sig: str) -> Path:
        return self.root / f"{sig}.c"

    def object_path(self, sig: str) -> Path:
        return self.root / f"{sig}.so"

    def meta_path(self, base_sig: str) -> Path:
        return self.root / f"{base_sig}.meta.json"

    # -- shared objects ------------------------------------------------
    def get_library(self, sig: str):
        """Loaded CDLL for ``sig``, or None.  A library that fails to
        load (truncated/corrupted entry) is evicted so the caller
        rebuilds it."""
        import ctypes

        lib = self._loaded.get(sig)
        if lib is not None:
            self.stats.memo_hits += 1
            return lib
        path = self.object_path(sig)
        if not path.exists():
            return None
        try:
            lib = ctypes.CDLL(str(path))
        except OSError:
            self.evict(sig)
            return None
        self.stats.disk_hits += 1
        self._loaded[sig] = lib
        return lib

    def store(self, sig: str, source: str, so_bytes_path: Path):
        """Atomically install a freshly compiled entry and load it."""
        import ctypes

        self.root.mkdir(parents=True, exist_ok=True)
        self._atomic_write(self.source_path(sig), source.encode())
        os.replace(so_bytes_path, self.object_path(sig))
        lib = ctypes.CDLL(str(self.object_path(sig)))
        self._loaded[sig] = lib
        self.stats.compiles += 1
        return lib

    def evict(self, sig: str) -> None:
        self.stats.evictions += 1
        self._loaded.pop(sig, None)
        for path in (self.object_path(sig), self.source_path(sig)):
            try:
                path.unlink()
            except FileNotFoundError:
                pass

    # -- autotune metadata ---------------------------------------------
    def read_meta(self, base_sig: str) -> dict | None:
        path = self.meta_path(base_sig)
        try:
            return json.loads(path.read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            return None

    def write_meta(self, base_sig: str, meta: dict) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        self._atomic_write(self.meta_path(base_sig), json.dumps(meta, indent=2).encode())

    # -- internals -----------------------------------------------------
    def _atomic_write(self, path: Path, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass
            raise
