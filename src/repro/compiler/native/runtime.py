"""ctypes-side runtime for native kernels: compiler discovery, the
``cc`` build step, and the :class:`NativeKernel` callable that drops
into ``CompiledKernel.fn``.

Compile flags are part of the numerics contract (see
:mod:`repro.compiler.native.policy`):

* ``-ffp-contract=off`` — gcc contracts ``a*b+c`` into FMA by default
  at ``-O2``, which changes results; off keeps every multiply/add
  individually rounded, as NumPy computes them.
* no ``-ffast-math`` — preserves NaN propagation, signed zeros, and
  IEEE division.

:class:`NativeKernel` mirrors the NumPy closure contract exactly —
``fn(list_of_arrays) -> np.ndarray`` — so threaded workers, serving
pools, the simulator's numeric replay, and preemptible sessions all
dispatch through it with zero executor changes.  Scratch space is
thread-local because serving pools share one compiled module across
worker threads, and ctypes releases the GIL for the duration of the C
call, so two threads really can be inside the same kernel at once.
"""

from __future__ import annotations

import ctypes
import os
import shutil
import subprocess
import tempfile
import threading
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

import numpy as np

from repro.compiler.native.renderer import RenderedKernel

__all__ = [
    "CC_FLAGS",
    "NativeBuildError",
    "NativeKernel",
    "compile_source",
    "find_compiler",
    "native_available",
]

#: Flags appended to every compile; the contract part (`-ffp-contract=off`,
#: no fast-math) is what makes the exact-op class bit-identical to NumPy.
#: `-O3 -march=native` auto-vectorizes the independent-accumulator loops
#: (GEMM ni dimension, elementwise maps) — legal without reassociation,
#: so it never changes results; gcc only vectorizes sequential float
#: reductions under -ffast-math, which stays off.
CC_FLAGS = (
    "-O3",
    "-march=native",
    "-funroll-loops",
    "-fPIC",
    "-shared",
    "-ffp-contract=off",
    "-fno-fast-math",
)

ENV_CC = "REPRO_CC"
ENV_DISABLE = "REPRO_NATIVE_DISABLE"


class NativeBuildError(Exception):
    """The system compiler rejected a rendered kernel."""


_addressof = ctypes.addressof
_from_buffer = ctypes.c_char.from_buffer


def _data_ptr(a: np.ndarray) -> int:
    """Data pointer of a contiguous array.

    ``a.ctypes.data`` builds a fresh interface wrapper on every access
    (~1.6µs) — dominant for sub-10µs kernels.  The buffer-protocol route
    is ~2× cheaper; read-only or zero-length arrays fall back to the
    wrapper.  The caller keeps ``a`` alive across the C call.
    """
    try:
        return _addressof(_from_buffer(a))
    except (TypeError, ValueError):
        return a.ctypes.data


@lru_cache(maxsize=1)
def find_compiler() -> str | None:
    """Path of a usable C compiler, or None.

    Honours ``REPRO_CC`` first, then searches ``cc``/``gcc``/``clang``
    on PATH.  ``REPRO_NATIVE_DISABLE=1`` forces the no-compiler path
    (used by tests to exercise the NumPy fallback deterministically).
    """
    if os.environ.get(ENV_DISABLE):
        return None
    override = os.environ.get(ENV_CC)
    if override:
        return override if shutil.which(override) else None
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def native_available() -> bool:
    """True when a system C compiler is available for the native backend."""
    return find_compiler() is not None


def compile_source(source: str, out_dir: Path) -> Path:
    """Compile ``source`` into a temporary .so inside ``out_dir`` and
    return its path (caller atomically renames it into the cache)."""
    cc = find_compiler()
    if cc is None:
        raise NativeBuildError("no C compiler available")
    out_dir.mkdir(parents=True, exist_ok=True)
    fd, c_path = tempfile.mkstemp(dir=str(out_dir), suffix=".c")
    with os.fdopen(fd, "w") as fh:
        fh.write(source)
    so_path = c_path[:-2] + ".so"
    cmd = [cc, *CC_FLAGS, "-o", so_path, c_path, "-lm"]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=120)
    finally:
        try:
            os.unlink(c_path)
        except FileNotFoundError:
            pass
    if proc.returncode != 0:
        try:
            os.unlink(so_path)
        except FileNotFoundError:
            pass
        raise NativeBuildError(
            f"{cc} failed ({proc.returncode}):\n{proc.stderr[-2000:]}"
        )
    return Path(so_path)


@dataclass
class NativeKernel:
    """A ctypes-dispatched kernel with the NumPy-closure call contract."""

    rendered: RenderedKernel
    signature: str
    library: object  # ctypes.CDLL — kept referenced for the kernel's life

    def __post_init__(self) -> None:
        fn = getattr(self.library, self.rendered.entry)
        fn.argtypes = (
            ctypes.POINTER(ctypes.c_void_p),
            ctypes.c_void_p,
            ctypes.c_void_p,
        )
        fn.restype = None
        self._fn = fn
        self._np_dtypes = tuple(np.dtype(d) for d in self.rendered.arg_dtypes)
        self._out_dtype = np.dtype(self.rendered.out_dtype)
        self._tls = threading.local()
        # ctypes array *types* are expensive to create; for sub-10µs
        # kernels doing it per call would dominate the dispatch cost.
        self._ptr_type = ctypes.c_void_p * max(1, self.rendered.n_args)

    @property
    def exact(self) -> bool:
        return self.rendered.exact

    def _scratch(self) -> ctypes.c_void_p:
        nbytes = self.rendered.scratch_bytes
        if nbytes == 0:
            return ctypes.c_void_p(0)
        buf = getattr(self._tls, "scratch", None)
        if buf is None or buf.nbytes < nbytes:
            buf = np.empty(nbytes, dtype=np.uint8)
            self._tls.scratch = buf
        return ctypes.c_void_p(buf.ctypes.data)

    def _arg_array(self, args):
        n = self.rendered.n_args
        if len(args) != n:
            raise ValueError(
                f"native kernel {self.rendered.name} expects {n} args, got {len(args)}"
            )
        # Arena values can be non-contiguous views; those (and dtype
        # mismatches) take the ascontiguousarray copy path, while the
        # common contiguous case goes straight to the data pointer.  The
        # holder list keeps any temporaries alive across the C call.
        holders = None
        ptrs = self._ptr_type()
        for k, a in enumerate(args):
            if a.dtype is not self._np_dtypes[k] or not a.flags.c_contiguous:
                a = np.ascontiguousarray(a, dtype=self._np_dtypes[k])
                if holders is None:
                    holders = []
                holders.append(a)
            ptrs[k] = _data_ptr(a)
        return ptrs, holders

    def run_into(self, args, out: np.ndarray) -> np.ndarray:
        """Execute into a caller-owned contiguous output buffer."""
        ptrs, holders = self._arg_array(args)
        self._fn(ptrs, _data_ptr(out), self._scratch())
        del holders
        return out

    def __call__(self, args) -> np.ndarray:
        out = np.empty(self.rendered.out_shape, dtype=self._out_dtype)
        return self.run_into(args, out)
