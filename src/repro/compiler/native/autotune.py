"""Per-kernel tile autotuning for GEMM-bearing native kernels.

The search space is the register tile (MR, NR) of the GEMM microkernel.
Every variant accumulates each output element over ``k`` sequentially,
so all variants of one kernel are bit-identical — the autotuner can
never change numerics, only speed.

The chosen tile and its measured timings persist in the cache as
``<base_sig>.meta.json``; a warm session reads the meta, builds (or
disk-loads) only the winning variant, and performs zero re-timing.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

import numpy as np

from repro.compiler.native.cache import NativeCache
from repro.compiler.native.runtime import NativeKernel

__all__ = ["GEMM_TILES", "autotune_tile"]

#: Candidate (MR, NR) register tiles.  The first entry is the default
#: used when autotuning is off.
GEMM_TILES: tuple[tuple[int, int], ...] = ((4, 4), (2, 8), (8, 2), (8, 8), (4, 8))

#: Interleaved timing rounds: every variant is visited once per round
#: and keeps its per-round minimum, so a transient stall (CI neighbour,
#: frequency throttle) hurts one sample of every variant instead of
#: every sample of one variant.
_TUNE_ROUNDS = 5

#: Target wall time per timing sample; fast kernels batch enough calls
#: to reach it so timer resolution and call overhead don't decide tiles.
_TARGET_SAMPLE_S = 1e-4


def _sample(arg_specs: Sequence[tuple[tuple[int, ...], str]], seed: int = 0):
    """Deterministic synthetic inputs for timing: normal floats, zero
    ints (keeps embedding-style index args trivially in range)."""
    rng = np.random.default_rng(seed)
    out = []
    for shape, dtype_name in arg_specs:
        dt = np.dtype(dtype_name)
        if np.issubdtype(dt, np.floating):
            out.append(rng.standard_normal(shape).astype(dt))
        elif dt == np.bool_:
            out.append(rng.integers(0, 2, size=shape).astype(dt))
        else:
            out.append(np.zeros(shape, dtype=dt))
    return out


def _time_variants(
    variants: dict[tuple[int, int], NativeKernel], args, rounds: int = _TUNE_ROUNDS
) -> dict[tuple[int, int], float]:
    """Best per-call time for each variant, interleaved round-robin."""
    est = float("inf")
    for kernel in variants.values():  # warm (page-in + icache) + calibrate
        t0 = time.perf_counter()
        kernel(args)
        est = min(est, time.perf_counter() - t0)
    iters = max(1, min(64, int(_TARGET_SAMPLE_S / max(est, 1e-9))))
    best = {tile: float("inf") for tile in variants}
    for _ in range(rounds):
        for tile, kernel in variants.items():
            t0 = time.perf_counter()
            for _ in range(iters):
                kernel(args)
            best[tile] = min(best[tile], (time.perf_counter() - t0) / iters)
    return best


def autotune_tile(
    base_sig: str,
    cache: NativeCache,
    build_variant: Callable[[tuple[int, int]], "NativeKernel | None"],
    arg_specs: Sequence[tuple[tuple[int, ...], str]],
    tiles: Sequence[tuple[int, int]] = GEMM_TILES,
) -> tuple[int, int]:
    """Pick (and persist) the fastest register tile for one kernel.

    Returns the cached choice immediately when ``<base_sig>.meta.json``
    exists — a warm run never re-times, never recompiles losers.
    """
    meta = cache.read_meta(base_sig)
    if meta and "tile" in meta:
        mr, nr = meta["tile"]
        return (int(mr), int(nr))

    variants: dict[tuple[int, int], NativeKernel] = {}
    for tile in tiles:
        kernel = build_variant(tile)
        if kernel is not None:
            variants[tuple(tile)] = kernel

    if variants:
        per_tile = _time_variants(variants, _sample(arg_specs))
        best_tile = min(per_tile, key=per_tile.get)
        timings = {f"{mr}x{nr}": t for (mr, nr), t in per_tile.items()}
    else:
        best_tile = tuple(tiles[0])
        timings = {}
    cache.write_meta(
        base_sig,
        {"tile": list(best_tile), "timings_s": timings, "rounds": _TUNE_ROUNDS},
    )
    cache.stats.autotunes += 1
    return best_tile
