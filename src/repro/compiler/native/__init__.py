"""Native C backend for fused kernels.

``build_native_kernel`` is the single entry the lowering pass calls per
fusion group.  The flow::

    render (pure Python, raises NativeUnsupported for foreign ops)
      -> base signature (op sequence + shapes + dtypes + renderer version)
      -> autotune? read meta / time tile variants / persist choice
      -> cache lookup (loaded memo -> on-disk .so -> compile with cc)
      -> NativeKernel (ctypes callable with the NumPy-closure contract)

Every failure mode — unsupported op, no system compiler, compile error,
corrupted cache entry — returns ``None`` so the caller keeps the NumPy
closure for that kernel only.  Nothing in the engine above this line
ever sees a native-backend exception.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Sequence

from repro.compiler.fusion import FusionGroup
from repro.compiler.native.autotune import GEMM_TILES, autotune_tile
from repro.compiler.native.cache import (
    CacheStats,
    NativeCache,
    kernel_signature,
    variant_signature,
)
from repro.compiler.native.policy import (
    EXACT_OPS,
    ULP_BUDGETS,
    graph_ulp_budget,
    max_ulp_diff,
    ulp_close,
)
from repro.compiler.native.renderer import (
    DEFAULT_TILE,
    RENDERER_VERSION,
    NativeUnsupported,
    RenderedKernel,
    render_group,
)
from repro.compiler.native.runtime import (
    NativeBuildError,
    NativeKernel,
    compile_source,
    find_compiler,
    native_available,
)
from repro.ir.graph import Graph

__all__ = [
    "EXACT_OPS",
    "GEMM_TILES",
    "RENDERER_VERSION",
    "ULP_BUDGETS",
    "CacheStats",
    "NativeCache",
    "NativeBuildError",
    "NativeKernel",
    "NativeOptions",
    "NativeUnsupported",
    "RenderedKernel",
    "build_native_kernel",
    "default_native_cache",
    "find_compiler",
    "graph_ulp_budget",
    "kernel_signature",
    "max_ulp_diff",
    "native_available",
    "render_group",
    "ulp_close",
]

_shared_cache: NativeCache | None = None
_warned_no_cc = False


def default_native_cache() -> NativeCache:
    """Process-wide cache instance rooted at ``REPRO_NATIVE_CACHE_DIR``
    (or ``$XDG_CACHE_HOME/repro/native``)."""
    global _shared_cache
    if _shared_cache is None:
        _shared_cache = NativeCache()
    return _shared_cache


def reset_default_cache() -> None:
    """Testing hook: forget the shared cache instance (e.g. after the
    env var changed)."""
    global _shared_cache
    _shared_cache = None


@dataclass
class NativeOptions:
    """Knobs for the native build path, threaded down from ``Compiler``."""

    cache: NativeCache | None = None
    autotune: bool = False
    tile: tuple[int, int] | None = None

    def resolve_cache(self) -> NativeCache:
        return self.cache if self.cache is not None else default_native_cache()


def _warn_once_no_cc() -> None:
    global _warned_no_cc
    if not _warned_no_cc:
        _warned_no_cc = True
        warnings.warn(
            "no C compiler found (set REPRO_CC or install cc/gcc/clang); "
            "backend='native' falls back to NumPy kernels",
            RuntimeWarning,
            stacklevel=3,
        )


def _obtain(cache: NativeCache, rendered: RenderedKernel, sig: str) -> NativeKernel | None:
    """Memo -> disk -> compile; None when the compiler rejects it."""
    lib = cache.get_library(sig)
    if lib is None:
        try:
            so_path = compile_source(rendered.source, cache.root)
        except NativeBuildError:
            cache.stats.fallbacks += 1
            return None
        lib = cache.store(sig, rendered.source, so_path)
    return NativeKernel(rendered=rendered, signature=sig, library=lib)


def build_native_kernel(
    graph: Graph,
    group: FusionGroup,
    external: Sequence[str],
    options: NativeOptions | None = None,
) -> NativeKernel | None:
    """Render + compile one fusion group, or ``None`` to keep NumPy."""
    options = options or NativeOptions()
    if not native_available():
        _warn_once_no_cc()
        return None
    cache = options.resolve_cache()

    try:
        probe = render_group(graph, group, external, tile=options.tile or DEFAULT_TILE)
    except NativeUnsupported:
        cache.stats.fallbacks += 1
        return None

    base_sig = kernel_signature(graph, group, external)
    tile = options.tile or DEFAULT_TILE
    if probe.tunable and options.autotune and options.tile is None:
        arg_specs = [
            (tuple(graph.node(nid).ty.shape), graph.node(nid).ty.dtype.name)
            for nid in external
        ]

        def build_variant(t: tuple[int, int]) -> NativeKernel | None:
            try:
                rk = render_group(graph, group, external, tile=t)
            except NativeUnsupported:
                return None
            return _obtain(cache, rk, variant_signature(base_sig, t))

        tile = autotune_tile(base_sig, cache, build_variant, arg_specs)

    rendered = probe if tile == probe.tile else render_group(graph, group, external, tile=tile)
    sig = variant_signature(base_sig, tile) if rendered.tunable else base_sig
    return _obtain(cache, rendered, sig)
