"""Dead code elimination: drop nodes unreachable from the graph outputs."""

from __future__ import annotations

from repro.ir.graph import Graph

__all__ = ["dead_code_elimination"]


def dead_code_elimination(graph: Graph) -> Graph:
    """Remove every node with no path to an output."""
    return graph.pruned()
