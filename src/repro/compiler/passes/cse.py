"""Common subexpression elimination.

Two OP nodes with the same operator, identical (already-deduplicated)
inputs, and equal attributes compute the same value; the later one is
rewritten to reuse the earlier one.  Constants are *not* merged — distinct
parameters materialize with distinct values even when their types match.

Declared graph outputs are never merged away: ``output_ids`` are the
compiled module's public contract (and merging two outputs would leave
the graph returning the same id twice), so a duplicate that the graph
returns is kept.
"""

from __future__ import annotations

from repro.ir.graph import Graph
from repro.ir.node import Node

__all__ = ["common_subexpression_elimination"]


def _op_key(node: Node, remap: dict[str, str]) -> tuple:
    inputs = tuple(remap.get(i, i) for i in node.inputs)
    attrs = tuple(sorted((k, repr(v)) for k, v in node.attrs.items()))
    return (node.op, inputs, attrs)


def common_subexpression_elimination(graph: Graph) -> Graph:
    """Deduplicate structurally identical operator nodes."""
    remap: dict[str, str] = {}
    seen: dict[tuple, str] = {}
    kept: list[Node] = []
    protected = set(graph.outputs)
    for nid in graph.topo_order():
        node = graph.node(nid)
        if not node.is_op:
            kept.append(node)
            continue
        key = _op_key(node, remap)
        if key in seen and node.id not in protected:
            remap[node.id] = seen[key]
            continue
        seen.setdefault(key, node.id)
        new_inputs = tuple(remap.get(i, i) for i in node.inputs)
        kept.append(node.with_inputs(new_inputs) if new_inputs != node.inputs else node)
    return Graph(graph.name, kept, graph.outputs)
