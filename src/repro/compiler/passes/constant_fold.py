"""Constant folding.

Only *literal* constants (small payloads carried on the node) participate:
lazily-initialized parameters are left alone so that folding never forces a
multi-megabyte weight tensor to materialize at compile time and never
changes which parameters a model owns.
"""

from __future__ import annotations

import numpy as np

from repro.ir.graph import Graph
from repro.ir.node import Initializer, Node, NodeKind
from repro.ir.ops import get_op

__all__ = ["constant_fold"]

# Never fold above this many elements: folding exists to clean up scalar
# arithmetic, not to precompute layers.
_MAX_FOLD_ELEMENTS = 4096


def constant_fold(graph: Graph) -> Graph:
    """Evaluate operator nodes whose inputs are all literal constants."""
    nodes: dict[str, Node] = {}
    for nid in graph.topo_order():
        node = graph.node(nid)
        if not node.is_op:
            nodes[nid] = node
            continue
        args: list[np.ndarray] = []
        foldable = node.ty.num_elements <= _MAX_FOLD_ELEMENTS
        if foldable:
            for src in node.inputs:
                src_node = nodes[src]
                if src_node.is_const and src_node.init is Initializer.LITERAL:
                    args.append(src_node.literal)  # type: ignore[arg-type]
                else:
                    foldable = False
                    break
        if not foldable:
            nodes[nid] = node
            continue
        value = get_op(node.op).compute(args, node.attrs)
        nodes[nid] = Node(
            id=node.id,
            kind=NodeKind.CONST,
            ty=node.ty,
            init=Initializer.LITERAL,
            literal=np.asarray(value, dtype=node.ty.dtype.to_numpy()),
        )
    return Graph(graph.name, nodes.values(), graph.outputs).pruned()
