"""Graph-level optimization passes (Graph -> Graph)."""

from repro.compiler.passes.constant_fold import constant_fold
from repro.compiler.passes.cse import common_subexpression_elimination
from repro.compiler.passes.dce import dead_code_elimination
from repro.compiler.passes.simplify import simplify

__all__ = [
    "constant_fold",
    "common_subexpression_elimination",
    "dead_code_elimination",
    "simplify",
]
