"""Algebraic graph simplifications.

Structural rewrites that need no numeric evaluation:

* ``identity(x)`` → ``x``
* ``reshape(reshape(x))`` → single reshape to the final shape
* ``transpose(transpose(x))`` with inverse permutations → ``x``
* ``reshape(x)`` to x's own shape → ``x``
"""

from __future__ import annotations

from repro.ir.graph import Graph
from repro.ir.node import Node

__all__ = ["simplify"]


def _resolve(remap: dict[str, str], nid: str) -> str:
    while nid in remap:
        nid = remap[nid]
    return nid


def _perm_of(node: Node, rank: int) -> tuple[int, ...]:
    axes = node.attrs.get("axes")
    if axes is None:
        return tuple(reversed(range(rank)))
    return tuple(int(a) for a in axes)  # type: ignore[union-attr]


def simplify(graph: Graph) -> Graph:
    """Apply local structural rewrites until none fire (single sweep is
    sufficient because rewrites only look backwards in topo order)."""
    remap: dict[str, str] = {}
    kept: dict[str, Node] = {}
    for nid in graph.topo_order():
        node = graph.node(nid)
        if not node.is_op:
            kept[nid] = node
            continue
        inputs = tuple(_resolve(remap, i) for i in node.inputs)
        node = node.with_inputs(inputs) if inputs != node.inputs else node

        if node.op == "identity":
            remap[node.id] = node.inputs[0]
            continue

        if node.op == "reshape":
            src = kept[node.inputs[0]]
            if node.ty.shape == src.ty.shape:
                remap[node.id] = src.id
                continue
            if src.is_op and src.op == "reshape":
                # reshape(reshape(x, s1), s2) == reshape(x, s2)
                node = Node(
                    id=node.id,
                    kind=node.kind,
                    ty=node.ty,
                    op="reshape",
                    inputs=(src.inputs[0],),
                    attrs={"shape": tuple(node.ty.shape)},
                )

        if node.op == "transpose":
            src = kept[node.inputs[0]]
            if src.is_op and src.op == "transpose":
                inner = _perm_of(src, kept[src.inputs[0]].ty.rank)
                outer = _perm_of(node, src.ty.rank)
                composed = tuple(inner[a] for a in outer)
                if composed == tuple(range(len(composed))):
                    remap[node.id] = src.inputs[0]
                    continue
                node = Node(
                    id=node.id,
                    kind=node.kind,
                    ty=node.ty,
                    op="transpose",
                    inputs=(src.inputs[0],),
                    attrs={"axes": composed},
                )

        kept[node.id] = node

    outputs = []
    out_nodes = dict(kept)
    for out in graph.outputs:
        resolved = _resolve(remap, out)
        # An output rewritten away must still be returned under some id; if
        # the resolved node is a leaf that's fine, the graph returns it.
        outputs.append(resolved)
    return Graph(graph.name, out_nodes.values(), outputs).pruned()
