"""Algebraic graph simplifications.

Structural rewrites that need no numeric evaluation:

* ``identity(x)`` → ``x``
* ``reshape(reshape(x))`` → single reshape to the final shape
* ``transpose(transpose(x))`` with inverse permutations → ``x``
* ``reshape(x)`` to x's own shape → ``x``

Declared graph outputs are never rewritten away: a compiled module's
``output_ids`` are its public contract (the scheduler wires plan tasks
and subgraph boundaries by these names), so elimination skips nodes whose
id the graph returns.
"""

from __future__ import annotations

from repro.ir.graph import Graph
from repro.ir.node import Node

__all__ = ["simplify"]


def _resolve(remap: dict[str, str], nid: str) -> str:
    while nid in remap:
        nid = remap[nid]
    return nid


def _perm_of(node: Node, rank: int) -> tuple[int, ...]:
    axes = node.attrs.get("axes")
    if axes is None:
        return tuple(reversed(range(rank)))
    return tuple(int(a) for a in axes)  # type: ignore[union-attr]


def simplify(graph: Graph) -> Graph:
    """Apply local structural rewrites until none fire (single sweep is
    sufficient because rewrites only look backwards in topo order)."""
    remap: dict[str, str] = {}
    kept: dict[str, Node] = {}
    protected = set(graph.outputs)
    for nid in graph.topo_order():
        node = graph.node(nid)
        if not node.is_op:
            kept[nid] = node
            continue
        inputs = tuple(_resolve(remap, i) for i in node.inputs)
        node = node.with_inputs(inputs) if inputs != node.inputs else node
        erasable = node.id not in protected

        if node.op == "identity" and erasable:
            remap[node.id] = node.inputs[0]
            continue

        if node.op == "reshape":
            src = kept[node.inputs[0]]
            if node.ty.shape == src.ty.shape and erasable:
                remap[node.id] = src.id
                continue
            if src.is_op and src.op == "reshape":
                # reshape(reshape(x, s1), s2) == reshape(x, s2)
                node = Node(
                    id=node.id,
                    kind=node.kind,
                    ty=node.ty,
                    op="reshape",
                    inputs=(src.inputs[0],),
                    attrs={"shape": tuple(node.ty.shape)},
                )

        if node.op == "transpose":
            src = kept[node.inputs[0]]
            if src.is_op and src.op == "transpose":
                inner = _perm_of(src, kept[src.inputs[0]].ty.rank)
                outer = _perm_of(node, src.ty.rank)
                composed = tuple(inner[a] for a in outer)
                if composed == tuple(range(len(composed))) and erasable:
                    remap[node.id] = src.inputs[0]
                    continue
                node = Node(
                    id=node.id,
                    kind=node.kind,
                    ty=node.ty,
                    op="transpose",
                    inputs=(src.inputs[0],),
                    attrs={"axes": composed},
                )

        kept[node.id] = node

    # Output nodes are protected from elimination above, so the declared
    # output ids survive verbatim.
    return Graph(graph.name, kept.values(), graph.outputs).pruned()
