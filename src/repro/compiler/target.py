"""Compilation targets.

A target names the device a module is generated for plus the kernel
*backend* used to execute it.  Numerics policy:

* ``backend="numpy"`` (default) lowers every kernel to the NumPy
  reference closures; numerics are identical across devices.
* ``backend="native"`` lowers each fused kernel through the C renderer
  (:mod:`repro.compiler.native`) when possible, falling back to the
  NumPy closure per-kernel for anything the renderer rejects or when no
  system compiler exists.  Order-preserving kernels stay bit-identical
  to NumPy; reassociated GEMM/reduction kernels differ within the
  documented ULP policy (:mod:`repro.compiler.native.policy`).

What differs between cpu/gpu is the cost metadata the backend attaches —
on GPU every kernel is a device-kernel launch, while the CPU backend
runs kernels as plain function calls — and which device cost model the
runtime applies.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import CompilerError

__all__ = ["Target", "BACKENDS", "CPU_TARGET", "GPU_TARGET"]

#: Recognized kernel backends.
BACKENDS = ("numpy", "native")


@dataclass(frozen=True)
class Target:
    """A code-generation target.

    Attributes:
        name: ``"cpu"`` or ``"gpu"``.
        backend: kernel backend, ``"numpy"`` or ``"native"``.
    """

    name: str
    backend: str = "numpy"

    def __post_init__(self) -> None:
        if self.name not in ("cpu", "gpu"):
            raise CompilerError(f"unknown target {self.name!r}")
        if self.backend not in BACKENDS:
            raise CompilerError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )

    @property
    def is_gpu(self) -> bool:
        return self.name == "gpu"

    @property
    def is_native(self) -> bool:
        return self.backend == "native"

    def with_backend(self, backend: str) -> "Target":
        """This target with a different kernel backend."""
        return self if backend == self.backend else replace(self, backend=backend)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name if self.backend == "numpy" else f"{self.name}+{self.backend}"


CPU_TARGET = Target("cpu")
GPU_TARGET = Target("gpu")
