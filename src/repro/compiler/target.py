"""Compilation targets.

A target names the backend a module is generated for.  Numerics are
identical across targets (both lower to NumPy kernels); what differs is the
cost metadata the backend attaches — on GPU every kernel is a device-kernel
launch, while the CPU backend runs kernels as plain function calls — and
which device cost model the runtime applies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CompilerError

__all__ = ["Target", "CPU_TARGET", "GPU_TARGET"]


@dataclass(frozen=True)
class Target:
    """A code-generation target.

    Attributes:
        name: ``"cpu"`` or ``"gpu"``.
    """

    name: str

    def __post_init__(self) -> None:
        if self.name not in ("cpu", "gpu"):
            raise CompilerError(f"unknown target {self.name!r}")

    @property
    def is_gpu(self) -> bool:
        return self.name == "gpu"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


CPU_TARGET = Target("cpu")
GPU_TARGET = Target("gpu")
