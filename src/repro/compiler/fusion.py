"""Operator fusion planning.

Implements a TVM-style greedy fusion over the operator patterns
(:class:`~repro.ir.ops.registry.OpPattern`): elementwise/broadcast ops are
absorbed into their producers (including compute anchors such as dense and
conv2d), injective data movement fuses with other cheap ops, reductions
absorb preceding elementwise chains, and OPAQUE ops (recurrent layers)
never fuse.

Fusion is the reason the paper partitions *coarsely* (§III-B, third
opportunity): a subgraph handed to the compiler as one piece keeps these
fusion opportunities, which per-operator scheduling would destroy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.graph import Graph
from repro.ir.node import Node
from repro.ir.ops import OpPattern, get_op

__all__ = ["FusionGroup", "plan_fusion"]

# Pattern strength ordering used to pick a group's anchor.
_STRENGTH = {
    OpPattern.OPAQUE: 5,
    OpPattern.OUT_FUSABLE: 4,
    OpPattern.REDUCE: 3,
    OpPattern.INJECTIVE: 2,
    OpPattern.BROADCAST: 1,
    OpPattern.ELEMWISE: 0,
}


@dataclass
class FusionGroup:
    """A set of operator nodes compiled into a single kernel.

    Attributes:
        node_ids: members in topological order.
        anchor_id: the member with the strongest pattern — its cost
            metadata (parallelism, kind) represents the whole kernel.
        output_id: the unique member whose value escapes the group.
    """

    node_ids: list[str] = field(default_factory=list)
    anchor_id: str = ""
    output_id: str = ""

    @property
    def size(self) -> int:
        return len(self.node_ids)


def _pattern(node: Node) -> OpPattern:
    return get_op(node.op).pattern


def _can_absorb(anchor: OpPattern, incoming: OpPattern) -> bool:
    """Whether a group anchored at ``anchor`` may absorb an ``incoming``
    consumer op."""
    if anchor is OpPattern.OPAQUE or incoming is OpPattern.OPAQUE:
        return False
    if incoming in (OpPattern.ELEMWISE, OpPattern.BROADCAST):
        return True
    if incoming is OpPattern.INJECTIVE:
        return anchor in (
            OpPattern.ELEMWISE,
            OpPattern.BROADCAST,
            OpPattern.INJECTIVE,
        )
    if incoming is OpPattern.REDUCE:
        return anchor in (
            OpPattern.ELEMWISE,
            OpPattern.BROADCAST,
            OpPattern.INJECTIVE,
        )
    return False  # OUT_FUSABLE never joins an existing group


def plan_fusion(graph: Graph) -> list[FusionGroup]:
    """Greedy single-pass fusion in topological order.

    A consumer joins its producer's group only when (a) the producer is the
    group's current output, (b) the consumer is the producer's *sole*
    consumer (so no intermediate value must escape), and (c) the pattern
    table allows it.  This keeps every group single-output by construction.
    """
    group_of: dict[str, int] = {}
    groups: list[FusionGroup] = []

    for nid in graph.topo_order():
        node = graph.node(nid)
        if not node.is_op:
            continue
        pat = _pattern(node)
        target_group: int | None = None
        if pat is not OpPattern.OPAQUE and pat is not OpPattern.OUT_FUSABLE:
            for src in node.inputs:
                src_node = graph.node(src)
                if not src_node.is_op or src not in group_of:
                    continue
                gidx = group_of[src]
                group = groups[gidx]
                if group.output_id != src:
                    continue  # producer's value already internal elsewhere
                if len(graph.consumers(src)) != 1 or src in graph.outputs:
                    continue  # value escapes to another consumer / the caller
                anchor_pat = _pattern(graph.node(group.anchor_id))
                if _can_absorb(anchor_pat, pat):
                    target_group = gidx
                    break
        if target_group is None:
            groups.append(FusionGroup(node_ids=[nid], anchor_id=nid, output_id=nid))
            group_of[nid] = len(groups) - 1
        else:
            group = groups[target_group]
            group.node_ids.append(nid)
            group.output_id = nid
            if _STRENGTH[pat] > _STRENGTH[_pattern(graph.node(group.anchor_id))]:
                group.anchor_id = nid
            group_of[nid] = target_group

    return groups
