"""Lowering: optimized graph + fusion plan → executable compiled module.

Each fusion group becomes one :class:`~repro.compiler.kernel.CompiledKernel`
whose NumPy closure evaluates the member ops in topological order.  Leaf
nodes (inputs and parameters) become kernel arguments; parameters are
materialized lazily and cached on the module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.errors import CompilerError, ExecutionError
from repro.compiler.fusion import FusionGroup, plan_fusion
from repro.compiler.kernel import CompiledKernel, KernelCost
from repro.compiler.target import Target
from repro.ir.graph import Graph
from repro.ir.ops import get_op

__all__ = ["CompiledModule", "lower", "build_kernel"]


def _group_cost(graph: Graph, group: FusionGroup) -> KernelCost:
    """Aggregate cost metadata over a fusion group."""
    members = set(group.node_ids)
    flops = 0.0
    external_in: set[str] = set()
    for nid in group.node_ids:
        node = graph.node(nid)
        spec = get_op(node.op)
        in_types = [graph.node(i).ty for i in node.inputs]
        flops += spec.flops(in_types, node.ty, node.attrs)
        for src in node.inputs:
            if src not in members:
                external_in.add(src)
    bytes_in = float(sum(graph.node(i).ty.size_bytes for i in external_in))
    bytes_out = float(graph.node(group.output_id).ty.size_bytes)

    anchor = graph.node(group.anchor_id)
    anchor_spec = get_op(anchor.op)
    anchor_in_types = [graph.node(i).ty for i in anchor.inputs]
    parallelism = anchor_spec.parallelism(anchor_in_types, anchor.ty, anchor.attrs)
    steps = anchor_spec.sequential_steps(anchor_in_types, anchor.attrs)
    return KernelCost(
        flops=flops,
        bytes_in=bytes_in,
        bytes_out=bytes_out,
        parallelism=parallelism,
        sequential_steps=steps,
        kernels_per_step=anchor_spec.kernels_per_step,
        kind=anchor_spec.kind,
    )


def build_kernel(
    graph: Graph,
    group: FusionGroup,
    target: Target,
    native: "object | None" = None,
) -> CompiledKernel:
    """Generate the executable kernel for one fusion group.

    With a native-backend target, the fusion group is rendered to C and
    compiled through the signature-keyed cache; any group the renderer
    rejects (or a missing system compiler) keeps the NumPy closure for
    that kernel only — the module transparently mixes backends.
    """
    members = set(group.node_ids)
    external: list[str] = []
    seen: set[str] = set()
    for nid in group.node_ids:
        for src in graph.node(nid).inputs:
            if src not in members and src not in seen:
                seen.add(src)
                external.append(src)

    # Pre-resolve the evaluation schedule so the closure does no graph work.
    schedule: list[tuple[str, object, tuple[str, ...], Mapping[str, object]]] = []
    for nid in group.node_ids:
        node = graph.node(nid)
        schedule.append((nid, get_op(node.op).compute, node.inputs, node.attrs))
    output_id = group.output_id
    arg_index = {src: i for i, src in enumerate(external)}

    def fn(args: Sequence[np.ndarray]) -> np.ndarray:
        env: dict[str, np.ndarray] = {
            src: args[i] for src, i in arg_index.items()
        }
        for nid, compute, inputs, attrs in schedule:
            env[nid] = compute([env[i] for i in inputs], attrs)
        return env[output_id]

    backend = "numpy"
    exact = True
    run_into = None
    if target.is_native:
        from repro.compiler.native import build_native_kernel

        native_kernel = build_native_kernel(graph, group, external, native)
        if native_kernel is not None:
            fn = native_kernel
            run_into = native_kernel.run_into
            backend = "native"
            exact = native_kernel.exact

    ops = "_".join(graph.node(n).op for n in group.node_ids[:3])
    prefix = "fused_" if len(group.node_ids) > 1 else ""
    return CompiledKernel(
        name=f"{prefix}{ops}__{group.output_id}",
        node_ids=tuple(group.node_ids),
        input_ids=tuple(external),
        output_id=output_id,
        fn=fn,
        cost=_group_cost(graph, group),
        target_name=target.name,
        backend=backend,
        exact=exact,
        run_into=run_into,
    )


@dataclass
class CompiledModule:
    """An executable, costed module for one target.

    Attributes:
        graph: the (optimized) source graph.
        target: backend the module was generated for.
        kernels: kernels in topological execution order.
        input_ids: graph placeholder ids, in declaration order.
        output_ids: graph output node ids.
    """

    graph: Graph
    target: Target
    kernels: list[CompiledKernel]
    input_ids: tuple[str, ...]
    output_ids: tuple[str, ...]
    _params: dict[str, np.ndarray] | None = field(default=None, repr=False)
    param_seed: int = 0

    @property
    def params(self) -> dict[str, np.ndarray]:
        """Materialized parameters (cached)."""
        if self._params is None:
            self._params = self.graph.materialize_params(self.param_seed)
        return self._params

    def total_flops(self) -> float:
        return sum(k.cost.flops for k in self.kernels)

    def total_launches(self) -> int:
        """Device-kernel launches per inference (the quantity fusion reduces)."""
        return sum(k.cost.total_launches for k in self.kernels)

    def run(self, inputs: Mapping[str, np.ndarray]) -> list[np.ndarray]:
        """Numerically execute the module (no timing model)."""
        env: dict[str, np.ndarray] = dict(self.params)
        for iid in self.input_ids:
            if iid not in inputs:
                raise ExecutionError(f"missing input {iid!r}")
            env[iid] = np.asarray(inputs[iid])
        for kernel in self.kernels:
            env[kernel.output_id] = kernel([env[i] for i in kernel.input_ids])
        return [env[o] for o in self.output_ids]


def lower(
    graph: Graph,
    target: Target,
    fuse: bool = True,
    native: "object | None" = None,
) -> CompiledModule:
    """Lower an optimized graph to a compiled module for ``target``.

    With ``fuse=False`` every operator becomes its own kernel — this is how
    the framework-like baselines (PyTorch/TensorFlow operators-in-sequence
    execution, §III-A) are modelled.
    """
    if fuse:
        groups = plan_fusion(graph)
    else:
        groups = [
            FusionGroup(node_ids=[nid], anchor_id=nid, output_id=nid)
            for nid in graph.topo_order()
            if graph.node(nid).is_op
        ]
    produced = {g.output_id for g in groups}
    for out in graph.outputs:
        if graph.node(out).is_op and out not in produced:
            raise CompilerError(
                f"fusion plan does not surface graph output {out!r}"
            )
    # Group-creation order is not a valid execution order (a group keeps
    # absorbing consumers after later groups are created); ordering kernels
    # by the topological index of their *output* node is.
    topo_index = {nid: i for i, nid in enumerate(graph.topo_order())}
    groups.sort(key=lambda g: topo_index[g.output_id])
    kernels = [build_kernel(graph, g, target, native=native) for g in groups]
    return CompiledModule(
        graph=graph,
        target=target,
        kernels=kernels,
        input_ids=tuple(n.id for n in graph.input_nodes()),
        output_ids=graph.outputs,
    )
