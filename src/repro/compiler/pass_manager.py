"""Pass manager: ordered, instrumented application of graph passes.

Mirrors the graph-level optimization layer of the DL-compiler pipeline in
the paper's Fig. 1.  Each pass is a pure ``Graph -> Graph`` function; the
manager records per-pass node counts so tests and benchmarks can assert
that optimizations actually fire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import CompilerError
from repro.ir.graph import Graph

from repro.compiler.passes.constant_fold import constant_fold
from repro.compiler.passes.cse import common_subexpression_elimination
from repro.compiler.passes.dce import dead_code_elimination
from repro.compiler.passes.simplify import simplify

__all__ = ["PassRecord", "PassManager", "default_passes"]

GraphPass = Callable[[Graph], Graph]


@dataclass(frozen=True)
class PassRecord:
    """What one pass did: node counts before/after."""

    name: str
    nodes_before: int
    nodes_after: int

    @property
    def removed(self) -> int:
        return self.nodes_before - self.nodes_after


@dataclass
class PassManager:
    """Runs a pipeline of graph passes, keeping a trace of their effects."""

    passes: Sequence[tuple[str, GraphPass]]
    trace: list[PassRecord] = field(default_factory=list)

    def run(self, graph: Graph) -> Graph:
        """Apply every pass in order; validates after each."""
        self.trace = []
        for name, fn in self.passes:
            before = len(graph)
            try:
                graph = fn(graph)
            except Exception as exc:
                raise CompilerError(f"pass {name!r} failed: {exc}") from exc
            graph.validate()
            self.trace.append(PassRecord(name, before, len(graph)))
        return graph


def default_passes(opt_level: int = 2) -> list[tuple[str, GraphPass]]:
    """The standard graph-optimization pipeline.

    * level 0: validation only (no rewrites)
    * level 1: DCE + simplify
    * level 2: + constant folding + CSE (default, mirrors "graph-level
      optimizations enabled" in the paper's TVM baseline)
    """
    if opt_level <= 0:
        return []
    passes: list[tuple[str, GraphPass]] = [
        ("simplify", simplify),
        ("dce", dead_code_elimination),
    ]
    if opt_level >= 2:
        passes += [
            ("constant_fold", constant_fold),
            ("cse", common_subexpression_elimination),
            ("dce_post", dead_code_elimination),
        ]
    return passes
