"""Device specifications and calibration constants.

The paper's testbed (§VI-A) is a 2.10 GHz Intel Xeon Gold 6152 (22 cores)
plus an NVIDIA Titan V, connected by PCIe 3.0 x16.  The constants below are
calibrated so the analytic cost model reproduces the paper's measured
subgraph costs (Table II) within a small factor:

* Wide&Deep RNN subgraph:  CPU ≈ 2.4 ms,  GPU ≈ 6.4 ms (GPU *slower*)
* Wide&Deep CNN subgraph:  CPU ≈ 14.9 ms, GPU ≈ 0.9 ms (GPU ≫ faster)

Two mechanisms produce those shapes without per-model special cases:

1. **Utilization**: effective throughput is scaled by
   ``parallelism / (parallelism + saturation)``.  A batch-1 LSTM step
   exposes ~1e3 parallel items — a rounding error against the GPU's
   ``5e5`` saturation point, but most of the CPU's ``2e4``.
2. **Launch overhead**: every GPU kernel launch costs ~10 µs; a
   100-step LSTM lowers to 200 serially-dependent launches (2 ms of pure
   launch overhead), while the CPU dispatches kernels as function calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

from repro.errors import DeviceError
from repro.ir.ops import OpKind

__all__ = [
    "DeviceSpec",
    "InterconnectSpec",
    "XEON_GOLD_6152",
    "TITAN_V",
    "PCIE3_X16",
]


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one compute device.

    Attributes:
        name: human-readable device name.
        kind: ``"cpu"`` or ``"gpu"``.
        peak_gflops: peak single-precision throughput (GFLOP/s).
        mem_bandwidth_gbps: DRAM bandwidth (GB/s).
        launch_overhead_s: fixed cost per kernel launch (seconds).
        saturation_parallelism: parallel work items at which utilization
            reaches 50% (half-saturation constant of the utilization curve).
        efficiency: achievable fraction of peak per operator kind, at full
            utilization.  Captures algorithmic efficiency differences (e.g.
            im2col convolution on CPU vs. implicit-GEMM kernels on GPU).
    """

    name: str
    kind: str
    peak_gflops: float
    mem_bandwidth_gbps: float
    launch_overhead_s: float
    saturation_parallelism: float
    efficiency: Mapping[OpKind, float]

    def __post_init__(self) -> None:
        if self.kind not in ("cpu", "gpu"):
            raise DeviceError(f"device kind must be cpu/gpu, got {self.kind!r}")
        if self.peak_gflops <= 0 or self.mem_bandwidth_gbps <= 0:
            raise DeviceError("throughput figures must be positive")
        object.__setattr__(
            self, "efficiency", MappingProxyType(dict(self.efficiency))
        )

    def efficiency_for(self, kind: OpKind) -> float:
        try:
            return self.efficiency[kind]
        except KeyError as exc:
            raise DeviceError(
                f"{self.name} has no efficiency entry for {kind}"
            ) from exc


@dataclass(frozen=True)
class InterconnectSpec:
    """A point-to-point host↔device link (PCIe in the paper's Fig. 5).

    Transfer time is ``base_latency + bytes / bandwidth`` — latency grows
    almost linearly with message size, matching the micro-benchmark shape.
    """

    name: str
    base_latency_s: float
    bandwidth_gbps: float

    def transfer_time(self, n_bytes: float) -> float:
        """Mean time to move ``n_bytes`` across the link (seconds)."""
        if n_bytes < 0:
            raise DeviceError(f"negative transfer size {n_bytes}")
        if n_bytes == 0:
            return 0.0
        return self.base_latency_s + n_bytes / (self.bandwidth_gbps * 1e9)


XEON_GOLD_6152 = DeviceSpec(
    name="Intel Xeon Gold 6152",
    kind="cpu",
    peak_gflops=1478.0,  # 22 cores x 2.1 GHz x 32 FLOP/cycle (AVX-512 FMA)
    mem_bandwidth_gbps=100.0,  # 6-channel DDR4-2666, measured-stream-level
    launch_overhead_s=0.5e-6,  # a kernel is a function call
    saturation_parallelism=2.0e4,
    efficiency={
        OpKind.GEMM: 0.50,
        OpKind.CONV: 0.18,  # direct conv (MKL-DNN-class) at batch 1
        OpKind.ELEMWISE: 0.05,  # memory bound
        OpKind.REDUCTION: 0.10,
        OpKind.MEMORY: 0.0,  # priced by bandwidth only
        OpKind.RECURRENT: 0.50,  # per-step small GEMMs (utilization-limited)
        OpKind.EMBEDDING: 0.0,
    },
)

TITAN_V = DeviceSpec(
    name="NVIDIA Titan V",
    kind="gpu",
    peak_gflops=14900.0,  # FP32 peak
    mem_bandwidth_gbps=650.0,  # HBM2
    launch_overhead_s=10.0e-6,  # CUDA kernel launch + driver
    saturation_parallelism=5.0e5,
    efficiency={
        OpKind.GEMM: 0.70,
        OpKind.CONV: 0.50,
        OpKind.ELEMWISE: 0.10,
        OpKind.REDUCTION: 0.20,
        OpKind.MEMORY: 0.0,
        OpKind.RECURRENT: 0.70,
        OpKind.EMBEDDING: 0.0,
    },
)

PCIE3_X16 = InterconnectSpec(
    name="PCIe 3.0 x16",
    base_latency_s=10.0e-6,  # pinned-memory DMA setup + driver
    bandwidth_gbps=12.0,  # achievable of the 15.75 GB/s theoretical
)
