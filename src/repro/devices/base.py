"""Device cost model.

Given a kernel's :class:`~repro.compiler.kernel.KernelCost`, a device
computes its mean execution time:

.. code-block:: text

    util       = parallelism / (parallelism + saturation)
    throughput = peak_flops * efficiency[kind] * util
    step_time  = launches*overhead + max(flops_step/throughput,
                                         bytes_step/mem_bw)
    time       = sequential_steps * step_time

The roofline-style ``max(compute, memory)`` makes elementwise kernels
bandwidth-bound and GEMM/conv compute-bound, and the per-step structure
charges recurrent layers ``seq_len`` rounds of launch overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compiler.kernel import KernelCost
from repro.devices.noise import NO_NOISE, NoiseModel
from repro.devices.specs import DeviceSpec

__all__ = ["Device"]


@dataclass(frozen=True)
class Device:
    """A compute device: spec + noise model.

    Two devices with the same spec are interchangeable for scheduling; the
    identity that matters to placement is :attr:`name` (``"cpu"``/``"gpu"``).
    """

    name: str
    spec: DeviceSpec
    noise: NoiseModel = NO_NOISE

    @property
    def kind(self) -> str:
        return self.spec.kind

    def utilization(self, parallelism: float) -> float:
        """Fraction of peak throughput reachable at this parallelism."""
        if parallelism <= 0:
            return 0.0
        return parallelism / (parallelism + self.spec.saturation_parallelism)

    def kernel_time(self, cost: KernelCost) -> float:
        """Mean execution time of one kernel invocation (seconds)."""
        steps = max(1, cost.sequential_steps)
        launch = self.spec.launch_overhead_s * cost.kernels_per_step
        flops_step = cost.flops / steps
        bytes_step = cost.total_bytes / steps

        compute_t = 0.0
        if flops_step > 0:
            eff = self.spec.efficiency_for(cost.kind)
            util = self.utilization(cost.parallelism)
            throughput = self.spec.peak_gflops * 1e9 * eff * util
            if throughput > 0:
                compute_t = flops_step / throughput
        memory_t = bytes_step / (self.spec.mem_bandwidth_gbps * 1e9)
        return steps * (launch + max(compute_t, memory_t))

    def sample_kernel_time(
        self, cost: KernelCost, rng: np.random.Generator
    ) -> float:
        """One noisy latency sample for this kernel."""
        return self.noise.sample(self.kernel_time(cost), rng)

    def sample_kernel_time_batch(
        self, cost: KernelCost, rng: np.random.Generator, n: int
    ) -> np.ndarray:
        """``n`` noisy latency samples for this kernel, drawn at once."""
        return self.noise.sample_batch(self.kernel_time(cost), rng, n)
