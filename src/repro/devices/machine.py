"""The coupled CPU-GPU machine: the hardware a schedule maps onto."""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.base import Device
from repro.devices.interconnect import Interconnect, make_pcie3
from repro.devices.noise import CPU_NOISE, GPU_NOISE, NO_NOISE, PCIE_NOISE
from repro.devices.specs import TITAN_V, XEON_GOLD_6152, DeviceSpec
from repro.errors import DeviceError

__all__ = ["Machine", "default_machine", "make_cpu", "make_gpu", "scale_device"]


def scale_device(device: Device, slowdown: float) -> Device:
    """A copy of ``device`` running ``slowdown``x slower.

    Models contention / thermal throttling: compute throughput and memory
    bandwidth shrink by the factor; launch overhead is host-side and
    unchanged.  Used by the online-adaptation engine both to *inject*
    interference in experiments and to *represent* its current belief
    about a drifted device.
    """
    if slowdown <= 0:
        raise DeviceError(f"slowdown must be positive, got {slowdown}")
    spec = device.spec
    scaled = DeviceSpec(
        name=f"{spec.name} (x{slowdown:.2f} load)",
        kind=spec.kind,
        peak_gflops=spec.peak_gflops / slowdown,
        mem_bandwidth_gbps=spec.mem_bandwidth_gbps / slowdown,
        launch_overhead_s=spec.launch_overhead_s,
        saturation_parallelism=spec.saturation_parallelism,
        efficiency=dict(spec.efficiency),
    )
    return Device(name=device.name, spec=scaled, noise=device.noise)


def make_cpu(noisy: bool = True) -> Device:
    """The paper's Xeon Gold 6152 host CPU."""
    return Device(
        name="cpu", spec=XEON_GOLD_6152, noise=CPU_NOISE if noisy else NO_NOISE
    )


def make_gpu(noisy: bool = True) -> Device:
    """The paper's Titan V GPU."""
    return Device(
        name="gpu", spec=TITAN_V, noise=GPU_NOISE if noisy else NO_NOISE
    )


@dataclass(frozen=True)
class Machine:
    """A server with one CPU, one GPU and a host↔device link (§VI-A)."""

    cpu: Device
    gpu: Device
    interconnect: Interconnect

    def device(self, name: str) -> Device:
        """Look up a device by placement name (``"cpu"``/``"gpu"``)."""
        if name == "cpu":
            return self.cpu
        if name == "gpu":
            return self.gpu
        raise DeviceError(f"unknown device {name!r}")

    def other(self, name: str) -> str:
        """The *other* device's placement name — the failover survivor."""
        if name == "cpu":
            return "gpu"
        if name == "gpu":
            return "cpu"
        raise DeviceError(f"unknown device {name!r}")

    @property
    def devices(self) -> tuple[Device, Device]:
        return (self.cpu, self.gpu)


def default_machine(noisy: bool = True) -> Machine:
    """The paper's evaluation machine: Xeon 6152 + Titan V over PCIe 3.0."""
    return Machine(
        cpu=make_cpu(noisy),
        gpu=make_gpu(noisy),
        interconnect=make_pcie3(PCIE_NOISE if noisy else NO_NOISE),
    )
