"""The machine a schedule maps onto: an ordered mesh of devices + links.

Historically this was the paper's coupled CPU-GPU pair (§VI-A).  Nothing
in DUET's scheduling algorithm forces exactly two devices — the scheduler
only ever consumes per-subgraph ``(time, bytes)`` tuples — so the
:class:`Machine` is an ordered *mesh*: a device list plus per-pair
:class:`~repro.devices.interconnect.Interconnect` link models, looked up
by name.  The legacy two-device keyword constructor
(``Machine(cpu=..., gpu=..., interconnect=...)``) still works and builds
a 2-device mesh whose behaviour is bit-identical to the old dataclass.

Topologies can be described in JSON (see ``examples/mesh.json``) and
loaded with :func:`load_mesh`; :func:`make_mesh` builds the common
"one host CPU + N PCIe GPUs" shape programmatically, with optional
per-GPU ``slowdown`` factors for heterogeneous meshes.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import replace
from typing import Iterable, Mapping

from repro.devices.base import Device
from repro.devices.interconnect import Interconnect, make_pcie3
from repro.devices.noise import (
    CPU_NOISE,
    GPU_NOISE,
    NO_NOISE,
    PCIE_NOISE,
    NoiseModel,
)
from repro.devices.specs import (
    PCIE3_X16,
    TITAN_V,
    XEON_GOLD_6152,
    DeviceSpec,
    InterconnectSpec,
)
from repro.errors import DeviceError

__all__ = [
    "Machine",
    "default_machine",
    "load_mesh",
    "make_cpu",
    "make_gpu",
    "make_mesh",
    "scale_device",
]

#: Named base device specs a mesh JSON may reference.
_BASE_SPECS: dict[str, DeviceSpec] = {
    "xeon_gold_6152": XEON_GOLD_6152,
    "titan_v": TITAN_V,
}

#: Named base link specs a mesh JSON may reference.
_BASE_LINKS: dict[str, InterconnectSpec] = {
    "pcie3_x16": PCIE3_X16,
}

#: Device-kind default noise models (mesh JSON ``noisy: true``).
_KIND_NOISE: dict[str, NoiseModel] = {"cpu": CPU_NOISE, "gpu": GPU_NOISE}


def scale_device(device: Device, slowdown: float) -> Device:
    """A copy of ``device`` running ``slowdown``x slower.

    Models contention / thermal throttling: compute throughput and memory
    bandwidth shrink by the factor; launch overhead is host-side and
    unchanged.  Used by the online-adaptation engine both to *inject*
    interference in experiments and to *represent* its current belief
    about a drifted device, and by heterogeneous meshes to derate one
    device relative to its siblings.
    """
    if slowdown <= 0:
        raise DeviceError(f"slowdown must be positive, got {slowdown}")
    spec = device.spec
    scaled = DeviceSpec(
        name=f"{spec.name} (x{slowdown:.2f} load)",
        kind=spec.kind,
        peak_gflops=spec.peak_gflops / slowdown,
        mem_bandwidth_gbps=spec.mem_bandwidth_gbps / slowdown,
        launch_overhead_s=spec.launch_overhead_s,
        saturation_parallelism=spec.saturation_parallelism,
        efficiency=dict(spec.efficiency),
    )
    return Device(name=device.name, spec=scaled, noise=device.noise)


def make_cpu(noisy: bool = True) -> Device:
    """The paper's Xeon Gold 6152 host CPU."""
    return Device(
        name="cpu", spec=XEON_GOLD_6152, noise=CPU_NOISE if noisy else NO_NOISE
    )


def make_gpu(noisy: bool = True, name: str = "gpu") -> Device:
    """The paper's Titan V GPU (optionally renamed for multi-GPU meshes)."""
    return Device(
        name=name, spec=TITAN_V, noise=GPU_NOISE if noisy else NO_NOISE
    )


def _pair(a: str, b: str) -> tuple[str, str]:
    """Canonical (sorted) key of an undirected device pair."""
    return (a, b) if a <= b else (b, a)


class Machine:
    """An ordered mesh of named devices joined by point-to-point links.

    The legacy two-device form ``Machine(cpu=..., gpu=...,
    interconnect=...)`` builds a mesh of exactly those two devices with
    the interconnect as the (only) link; the mesh form takes an ordered
    ``devices`` sequence plus per-pair ``links`` and/or a
    ``default_link`` used for any pair without an explicit entry.

    Device order is semantically meaningful and preserved: schedulers
    enumerate candidates, tie-break, and seed per-device RNG streams in
    this order, so two meshes with the same devices in a different order
    are different machines.
    """

    def __init__(
        self,
        cpu: Device | None = None,
        gpu: Device | None = None,
        interconnect: Interconnect | None = None,
        *,
        devices: Iterable[Device] | None = None,
        links: Mapping[tuple[str, str], Interconnect] | None = None,
        default_link: Interconnect | None = None,
    ):
        if devices is None:
            if cpu is None or gpu is None or interconnect is None:
                raise DeviceError(
                    "Machine needs either (cpu, gpu, interconnect) or a "
                    "devices= list"
                )
            devices = (cpu, gpu)
            default_link = interconnect if default_link is None else default_link
        elif cpu is not None or gpu is not None or interconnect is not None:
            raise DeviceError(
                "Machine(devices=...) excludes the legacy cpu/gpu/interconnect "
                "arguments"
            )
        self._devices: tuple[Device, ...] = tuple(devices)
        if not self._devices:
            raise DeviceError("a machine needs at least one device")
        self._by_name: dict[str, Device] = {}
        for dev in self._devices:
            if dev.name in self._by_name:
                raise DeviceError(f"duplicate device name {dev.name!r}")
            self._by_name[dev.name] = dev
        self._links: dict[tuple[str, str], Interconnect] = {}
        for key, link in (links or {}).items():
            a, b = key
            if a not in self._by_name or b not in self._by_name:
                raise DeviceError(
                    f"link {key!r} references a device outside "
                    f"{self.device_names}"
                )
            if a == b:
                raise DeviceError(f"self-link {key!r} is meaningless")
            self._links[_pair(a, b)] = link
        self._default_link = default_link
        if self._default_link is None and len(self._devices) > 1:
            for a_dev, b_dev in zip(self._devices, self._devices[1:]):
                if _pair(a_dev.name, b_dev.name) not in self._links:
                    raise DeviceError(
                        f"no link between {a_dev.name!r} and {b_dev.name!r} "
                        "and no default_link"
                    )

    # ------------------------------------------------------------------
    # lookup

    @property
    def devices(self) -> tuple[Device, ...]:
        """The mesh's devices, in canonical order."""
        return self._devices

    @property
    def device_names(self) -> tuple[str, ...]:
        """Device placement names, in canonical order."""
        return tuple(d.name for d in self._devices)

    def device(self, name: str) -> Device:
        """Look up a device by placement name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise DeviceError(
                f"unknown device {name!r}; this machine has "
                f"{list(self.device_names)}"
            ) from None

    def peers(self, name: str) -> tuple[str, ...]:
        """Every *other* device's name, in canonical order — the failover
        survivor candidates when ``name`` is lost."""
        self.device(name)  # raise on unknown names
        return tuple(n for n in self.device_names if n != name)

    def other(self, name: str) -> str:
        """Deprecated: the other device of a 2-device machine.

        .. deprecated::
            Use :meth:`peers`, which returns every survivor of an
            N-device mesh.
        """
        warnings.warn(
            "Machine.other() assumes a 2-device machine; use "
            "Machine.peers(name) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        peers = self.peers(name)
        if len(peers) != 1:
            raise DeviceError(
                f"Machine.other({name!r}) is ambiguous on a "
                f"{len(self._devices)}-device mesh; use peers()"
            )
        return peers[0]

    @property
    def host(self) -> str:
        """The host device's name: ``"cpu"`` when present, else the
        first device.  External inputs originate here and model outputs
        land here."""
        return "cpu" if "cpu" in self._by_name else self._devices[0].name

    # ------------------------------------------------------------------
    # links

    def link(self, a: str, b: str) -> Interconnect:
        """The link carrying transfers between devices ``a`` and ``b``
        (symmetric; per-pair entry first, else the default link)."""
        if a == b:
            raise DeviceError(f"no link from {a!r} to itself")
        self.device(a)
        self.device(b)
        link = self._links.get(_pair(a, b))
        if link is not None:
            return link
        if self._default_link is None:
            raise DeviceError(f"no link between {a!r} and {b!r}")
        return self._default_link

    @property
    def links(self) -> dict[tuple[str, str], Interconnect]:
        """Every device pair's link, keyed by sorted name pair."""
        out: dict[tuple[str, str], Interconnect] = {}
        names = self.device_names
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                out[_pair(a, b)] = self.link(a, b)
        return out

    # ------------------------------------------------------------------
    # legacy two-device accessors

    @property
    def cpu(self) -> Device:
        """The host CPU device (by name, else the first cpu-kind device)."""
        return self._kind_device("cpu")

    @property
    def gpu(self) -> Device:
        """The GPU device (by name, else the first gpu-kind device)."""
        return self._kind_device("gpu")

    def _kind_device(self, kind: str) -> Device:
        dev = self._by_name.get(kind)
        if dev is not None:
            return dev
        for d in self._devices:
            if d.spec.kind == kind:
                return d
        raise DeviceError(f"machine has no {kind} device: {self.device_names}")

    @property
    def interconnect(self) -> Interconnect:
        """The single link of a uniform mesh (legacy accessor).

        Raises :class:`~repro.errors.DeviceError` on a mesh with
        heterogeneous per-pair links — use :meth:`link` there.
        """
        distinct = {id(l) for l in self._links.values()}
        if self._default_link is not None:
            if not self._links or distinct == {id(self._default_link)}:
                return self._default_link
        elif len(distinct) == 1:
            return next(iter(self._links.values()))
        raise DeviceError(
            "machine has heterogeneous links; use machine.link(a, b)"
        )

    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Machine):
            return NotImplemented
        return (
            self._devices == other._devices
            and self.links == other.links
        )

    __hash__ = None  # mutable-free but unhashable, like the old dataclass in practice

    def __repr__(self) -> str:
        return f"Machine(devices={list(self.device_names)})"


def default_machine(noisy: bool = True) -> Machine:
    """The paper's evaluation machine: Xeon 6152 + Titan V over PCIe 3.0."""
    return Machine(
        cpu=make_cpu(noisy),
        gpu=make_gpu(noisy),
        interconnect=make_pcie3(PCIE_NOISE if noisy else NO_NOISE),
    )


def make_mesh(
    num_gpus: int = 2,
    noisy: bool = True,
    gpu_slowdowns: Iterable[float] | None = None,
) -> Machine:
    """A host CPU plus ``num_gpus`` Titan-V GPUs, all on PCIe 3.0 links.

    GPUs are named ``gpu0``, ``gpu1``, ... in mesh order.  An optional
    ``gpu_slowdowns`` sequence (one factor per GPU) derates individual
    GPUs via :func:`scale_device`, producing a heterogeneous mesh.
    """
    if num_gpus < 1:
        raise DeviceError(f"need at least one GPU, got {num_gpus}")
    slowdowns = list(gpu_slowdowns) if gpu_slowdowns is not None else []
    if slowdowns and len(slowdowns) != num_gpus:
        raise DeviceError(
            f"got {len(slowdowns)} slowdowns for {num_gpus} GPUs"
        )
    devices: list[Device] = [make_cpu(noisy)]
    for i in range(num_gpus):
        gpu = make_gpu(noisy, name=f"gpu{i}")
        if slowdowns and slowdowns[i] != 1.0:
            gpu = scale_device(gpu, slowdowns[i])
        devices.append(gpu)
    link = make_pcie3(PCIE_NOISE if noisy else NO_NOISE)
    return Machine(devices=devices, default_link=link)


# ----------------------------------------------------------------------
# JSON mesh topologies (examples/mesh.json)


def _device_from_json(entry: Mapping, noisy: bool) -> Device:
    try:
        name = entry["name"]
    except KeyError:
        raise DeviceError("mesh device entry needs a 'name'") from None
    base_key = entry.get("base", "titan_v")
    try:
        spec = _BASE_SPECS[base_key]
    except KeyError:
        raise DeviceError(
            f"unknown base spec {base_key!r}; choose from "
            f"{sorted(_BASE_SPECS)}"
        ) from None
    overrides = {
        k: entry[k]
        for k in ("peak_gflops", "mem_bandwidth_gbps", "launch_overhead_s",
                  "saturation_parallelism")
        if k in entry
    }
    if overrides:
        spec = replace(spec, efficiency=dict(spec.efficiency), **overrides)
    kind = entry.get("kind", spec.kind)
    if kind != spec.kind:
        raise DeviceError(
            f"device {name!r} declares kind {kind!r} but its base spec "
            f"{base_key!r} is a {spec.kind}"
        )
    use_noise = entry.get("noisy", noisy)
    noise = _KIND_NOISE.get(kind, NO_NOISE) if use_noise else NO_NOISE
    device = Device(name=name, spec=spec, noise=noise)
    slowdown = entry.get("slowdown", 1.0)
    if slowdown != 1.0:
        device = scale_device(device, slowdown)
    return device


def _link_from_json(entry: Mapping, noisy: bool) -> Interconnect:
    base_key = entry.get("base", "pcie3_x16")
    try:
        spec = _BASE_LINKS[base_key]
    except KeyError:
        raise DeviceError(
            f"unknown base link {base_key!r}; choose from "
            f"{sorted(_BASE_LINKS)}"
        ) from None
    overrides = {
        k: entry[k]
        for k in ("base_latency_s", "bandwidth_gbps")
        if k in entry
    }
    if overrides:
        spec = replace(spec, **overrides)
    use_noise = entry.get("noisy", noisy)
    return Interconnect(spec=spec, noise=PCIE_NOISE if use_noise else NO_NOISE)


def load_mesh(source) -> Machine:
    """Build a :class:`Machine` from a JSON topology.

    ``source`` is a file path, an open file object, or an
    already-decoded ``dict``.  Schema (see ``examples/mesh.json``)::

        {
          "noisy": true,
          "devices": [
            {"name": "cpu",  "base": "xeon_gold_6152"},
            {"name": "gpu0", "base": "titan_v"},
            {"name": "gpu1", "base": "titan_v", "slowdown": 1.3}
          ],
          "links": [
            {"between": ["gpu0", "gpu1"], "bandwidth_gbps": 25.0}
          ],
          "default_link": {"base": "pcie3_x16"}
        }

    Device entries reference a named base spec (``xeon_gold_6152`` /
    ``titan_v``) with optional throughput overrides and a ``slowdown``
    derating factor; link entries reference ``pcie3_x16`` with optional
    latency/bandwidth overrides.  Any pair without an explicit link uses
    ``default_link`` (PCIe 3.0 when omitted).
    """
    if isinstance(source, Mapping):
        payload = source
    elif hasattr(source, "read"):
        payload = json.load(source)
    else:
        with open(source) as f:
            payload = json.load(f)
    if not isinstance(payload, Mapping):
        raise DeviceError("mesh JSON must be an object")
    noisy = bool(payload.get("noisy", True))
    entries = payload.get("devices")
    if not entries:
        raise DeviceError("mesh JSON needs a non-empty 'devices' list")
    devices = [_device_from_json(e, noisy) for e in entries]
    links: dict[tuple[str, str], Interconnect] = {}
    for entry in payload.get("links", ()):
        between = entry.get("between")
        if not between or len(between) != 2:
            raise DeviceError(
                "mesh link entry needs 'between': [name, name]"
            )
        links[(between[0], between[1])] = _link_from_json(entry, noisy)
    default_entry = payload.get("default_link", {})
    default_link = _link_from_json(default_entry, noisy)
    return Machine(devices=devices, links=links, default_link=default_link)
