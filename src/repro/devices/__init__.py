"""Device substrate: calibrated device cost models, link models, and
N-device machine topologies (default CPU+GPU pair or JSON-loaded meshes)."""

from repro.devices.base import Device
from repro.devices.interconnect import Interconnect, make_pcie3
from repro.devices.machine import (
    Machine,
    default_machine,
    load_mesh,
    make_cpu,
    make_gpu,
    make_mesh,
    scale_device,
)
from repro.devices.noise import (
    CPU_NOISE,
    GPU_NOISE,
    NO_NOISE,
    PCIE_NOISE,
    NoiseModel,
)
from repro.devices.specs import (
    PCIE3_X16,
    TITAN_V,
    XEON_GOLD_6152,
    DeviceSpec,
    InterconnectSpec,
)

__all__ = [
    "CPU_NOISE",
    "Device",
    "DeviceSpec",
    "GPU_NOISE",
    "Interconnect",
    "InterconnectSpec",
    "Machine",
    "NO_NOISE",
    "NoiseModel",
    "PCIE3_X16",
    "PCIE_NOISE",
    "TITAN_V",
    "XEON_GOLD_6152",
    "default_machine",
    "load_mesh",
    "make_cpu",
    "make_gpu",
    "make_mesh",
    "make_pcie3",
    "scale_device",
]
