"""Stochastic latency noise.

Real inference latency is a distribution, not a number — the paper reports
P50/P99/P99.9 (Fig. 12) and observes that PCIe transfers add variance that
shrinks DUET's P99.9 advantage.  The model: multiplicative lognormal jitter
on every kernel/transfer, plus rare additive interference spikes (OS
scheduling, ECC scrubs, clock ramps).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DeviceError

__all__ = ["NoiseModel", "CPU_NOISE", "GPU_NOISE", "PCIE_NOISE", "NO_NOISE"]


@dataclass(frozen=True)
class NoiseModel:
    """Latency noise parameters.

    Attributes:
        jitter_sigma: sigma of the lognormal multiplicative jitter.
        spike_prob: probability that one sample suffers an interference
            spike.
        spike_scale: multiplier applied on a spike (e.g. 3.0 means the
            operation takes 3x its mean time).
    """

    jitter_sigma: float = 0.0
    spike_prob: float = 0.0
    spike_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.jitter_sigma < 0 or not 0 <= self.spike_prob <= 1:
            raise DeviceError("invalid noise parameters")
        if self.spike_scale < 1.0:
            raise DeviceError("spike_scale must be >= 1")

    def sample(self, mean_time: float, rng: np.random.Generator) -> float:
        """One noisy latency sample with the given mean.

        The lognormal factor is normalized by ``exp(sigma^2 / 2)`` so the
        expected value of a sample equals ``mean_time`` (ignoring spikes).
        """
        if mean_time <= 0:
            return 0.0
        t = mean_time
        if self.jitter_sigma > 0:
            # np.exp (not math.exp): bit-identical to sample_batch, which
            # vectorizes this same expression.
            factor = float(
                np.exp(rng.normal(0.0, self.jitter_sigma) - self.jitter_sigma**2 / 2)
            )
            t *= factor
        if self.spike_prob > 0 and rng.random() < self.spike_prob:
            t *= self.spike_scale
        return t

    def sample_batch(
        self, mean_time: float, rng: np.random.Generator, n: int
    ) -> np.ndarray:
        """``n`` noisy latency samples with the given mean, drawn at once.

        Elementwise the math matches :meth:`sample`: a generator that would
        produce the same normal/uniform variates yields the same latencies.
        For ``n == 1`` the draws consume the generator exactly like one
        :meth:`sample` call, so batched and scalar streams coincide.  Like
        :meth:`sample`, a non-positive mean consumes no randomness.
        """
        if mean_time <= 0:
            return np.zeros(n)
        t = np.full(n, mean_time)
        if self.jitter_sigma > 0:
            t = t * np.exp(
                rng.normal(0.0, self.jitter_sigma, n) - self.jitter_sigma**2 / 2
            )
        if self.spike_prob > 0:
            spikes = rng.random(n) < self.spike_prob
            t = np.where(spikes, t * self.spike_scale, t)
        return t


NO_NOISE = NoiseModel()

CPU_NOISE = NoiseModel(jitter_sigma=0.04, spike_prob=0.002, spike_scale=3.0)
GPU_NOISE = NoiseModel(jitter_sigma=0.02, spike_prob=0.001, spike_scale=2.0)
# The interconnect is the noisiest component (paper §VI-B: "the CPU-GPU
# interconnect communication adds additional performance variation").
PCIE_NOISE = NoiseModel(jitter_sigma=0.15, spike_prob=0.01, spike_scale=5.0)
