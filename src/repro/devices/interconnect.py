"""The CPU↔GPU interconnect: transfer timing + noise.

Reproduces the micro-benchmark of the paper's Fig. 5: point-to-point bulk
transfer latency grows essentially linearly with message size, with a fixed
base latency floor for small messages.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.noise import NO_NOISE, NoiseModel
from repro.devices.specs import PCIE3_X16, InterconnectSpec

__all__ = ["Interconnect", "make_pcie3"]


@dataclass(frozen=True)
class Interconnect:
    """A host↔device link with a noise model."""

    spec: InterconnectSpec
    noise: NoiseModel = NO_NOISE

    @property
    def name(self) -> str:
        return self.spec.name

    def transfer_time(self, n_bytes: float) -> float:
        """Mean transfer time for ``n_bytes`` (seconds)."""
        return self.spec.transfer_time(n_bytes)

    def sample_transfer_time(
        self, n_bytes: float, rng: np.random.Generator
    ) -> float:
        """One noisy transfer latency sample."""
        return self.noise.sample(self.transfer_time(n_bytes), rng)

    def sample_transfer_time_batch(
        self, n_bytes: float, rng: np.random.Generator, n: int
    ) -> np.ndarray:
        """``n`` noisy transfer latency samples, drawn at once."""
        return self.noise.sample_batch(self.transfer_time(n_bytes), rng, n)

    def bandwidth_at(self, n_bytes: float) -> float:
        """Effective bandwidth (bytes/s) achieved for this message size.

        Small messages are dominated by base latency and achieve a small
        fraction of the link's peak — the left side of Fig. 5.
        """
        t = self.transfer_time(n_bytes)
        return n_bytes / t if t > 0 else 0.0


def make_pcie3(noise: NoiseModel = NO_NOISE) -> Interconnect:
    """The paper's PCIe 3.0 x16 link."""
    return Interconnect(spec=PCIE3_X16, noise=noise)
