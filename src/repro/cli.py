"""Command-line interface.

Examples::

    python -m repro list
    python -m repro info wide_deep
    python -m repro print siamese --tiny
    python -m repro optimize wide_deep --runs 2000
    python -m repro bench fig13
    python -m repro fuzz --seed 0 --count 50
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.bench import (
    ablation_correction,
    ablation_granularity,
    ablation_profiling,
    fig05_comm,
    fig11_end2end,
    fig12_tail,
    fig13_schedulers,
    fig14_rnn_layers,
    fig15_cnn_depth,
    fig16_ffn_depth,
    fig17_batch_size,
    format_table,
    table1_rows,
    table2_breakdown,
    table3_resnet,
)
from repro.core import DuetEngine, PhaseType, partition_graph
from repro.devices import default_machine, load_mesh
from repro.errors import ReproError
from repro.ir import format_graph
from repro.models import MODEL_NAMES, build_model

__all__ = ["main"]

_EXPERIMENTS: dict[str, Callable[..., list[dict]]] = {
    "fig5": fig05_comm,
    "fig11": fig11_end2end,
    "fig12": fig12_tail,
    "fig13": fig13_schedulers,
    "fig14": fig14_rnn_layers,
    "fig15": fig15_cnn_depth,
    "fig16": fig16_ffn_depth,
    "fig17": fig17_batch_size,
    "table2": table2_breakdown,
    "table3": table3_resnet,
    "ablation-profiling": ablation_profiling,
    "ablation-granularity": ablation_granularity,
    "ablation-correction": ablation_correction,
}


def _machine_from_args(args: argparse.Namespace, noisy: bool = False):
    """The machine a command runs against: ``--mesh FILE`` when given
    (see ``examples/mesh.json``), else the default 2-device machine."""
    mesh = getattr(args, "mesh", None)
    if mesh:
        return load_mesh(mesh)
    return default_machine(noisy=noisy)


def _cmd_list(args: argparse.Namespace) -> int:
    print("models:      " + ", ".join(MODEL_NAMES))
    print("experiments: table1, " + ", ".join(sorted(_EXPERIMENTS)))
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    graph = build_model(args.model, tiny=args.tiny)
    print(f"model:   {graph.name}")
    print(f"ops:     {len(graph.op_nodes())}")
    print(f"params:  {graph.num_params() / 1e6:.2f} M")
    print(f"flops:   {graph.total_flops() / 1e9:.3f} G")
    part = partition_graph(graph)
    print(f"phases:  {len(part.phases)} ({len(part.subgraphs)} subgraphs)")
    for phase in part.phases:
        kind = "seq  " if phase.type is PhaseType.SEQUENTIAL else "multi"
        sizes = ", ".join(str(len(sg.node_ids)) for sg in phase.subgraphs)
        print(f"  phase {phase.index:2d} [{kind}] op counts: {sizes}")
    return 0


def _cmd_print(args: argparse.Namespace) -> int:
    graph = build_model(args.model, tiny=args.tiny)
    print(format_graph(graph))
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    machine = default_machine(noisy=args.noisy)
    engine = DuetEngine(machine=machine)
    if args.spec:
        from pathlib import Path

        from repro.ir import build_from_json

        graph = build_from_json(Path(args.spec).read_text())
    elif args.model:
        graph = build_model(args.model, tiny=args.tiny)
    else:
        print("error: provide a model name or --spec PATH", file=sys.stderr)
        return 2
    opt = engine.optimize(graph, profile_path=args.profile_cache)

    rows = []
    for sg in opt.partition.subgraphs:
        prof = opt.profiles[sg.id]
        rows.append(
            {
                "subgraph": sg.id,
                "ops": len(sg.node_ids),
                "cpu_ms": prof.time_on("cpu") * 1e3,
                "gpu_ms": prof.time_on("gpu") * 1e3,
                "device": opt.placement[sg.id],
            }
        )
    print(format_table(rows, title=f"{graph.name}: profile and placement"))
    print()
    print(f"DUET latency:     {opt.latency * 1e3:.3f} ms")
    print(f"TVM-CPU latency:  {opt.single_device_latency['cpu'] * 1e3:.3f} ms")
    print(f"TVM-GPU latency:  {opt.single_device_latency['gpu'] * 1e3:.3f} ms")
    print(f"fallback:         {opt.fallback_device or 'none (co-execution)'}")
    mem = opt.memory_report()
    print(
        "resident weights: "
        + ", ".join(
            f"{dev} {m.param_bytes / 1e6:.1f} MB"
            for dev, m in sorted(mem.per_device.items())
        )
    )
    if args.runs > 0:
        stats = engine.latency_stats(opt, n_runs=args.runs)
        print(
            f"distribution ({args.runs} runs): P50 {stats.p50_ms:.3f}  "
            f"P99 {stats.p99_ms:.3f}  P99.9 {stats.p999_ms:.3f} ms"
        )
    if args.session_runs > 0:
        from repro.ir import make_inputs

        feeds = make_inputs(graph)
        session = engine.session(opt)
        session.run(feeds)  # warm-up: weights + arena, paid once
        results = session.run_many([feeds] * args.session_runs)
        per_request = sum(r.wall_time_s for r in results) / len(results)
        print(
            f"session serving ({args.session_runs} requests): "
            f"{per_request * 1e3:.3f} ms/request, "
            f"arena {session.arena.buffer_count} buffers "
            f"({session.arena.allocations} allocations total)"
        )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Regenerate every experiment table into a results directory."""
    import pathlib

    out_dir = pathlib.Path(args.output)
    out_dir.mkdir(parents=True, exist_ok=True)
    machine = default_machine(noisy=False)
    noisy = default_machine(noisy=True)
    jobs = [("table1", lambda: table1_rows())]
    for name, fn in sorted(_EXPERIMENTS.items()):
        m = noisy if name == "fig12" else machine
        if name == "fig12":
            jobs.append((name, lambda fn=fn, m=m: fn(m, n_runs=args.runs)))
        else:
            jobs.append((name, lambda fn=fn, m=m: fn(m)))
    for name, job in jobs:
        rows = job()
        text = format_table(rows, title=name)
        (out_dir / f"{name}.txt").write_text(text + "\n")
        print(f"wrote {out_dir / (name + '.txt')}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    machine = default_machine(noisy=args.experiment == "fig12")
    if args.experiment == "table1":
        print(format_table(table1_rows(), title="Table I"))
        return 0
    fn = _EXPERIMENTS.get(args.experiment)
    if fn is None:
        print(
            f"unknown experiment {args.experiment!r}; options: table1, "
            + ", ".join(sorted(_EXPERIMENTS)),
            file=sys.stderr,
        )
        return 2
    rows = fn(machine)
    print(format_table(rows, title=args.experiment))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Closed-loop load through the multi-tenant serving frontend."""
    from repro.bench import elementwise_chain, format_table, run_closed_loop
    from repro.ir import make_inputs
    from repro.serving import ServingConfig, TenantRegistry

    if args.model:
        graph = build_model(args.model, tiny=args.tiny)
    else:
        graph = elementwise_chain()
    tenants = None
    if args.tenants:
        try:
            tenants = TenantRegistry.from_file(args.tenants)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    engine = DuetEngine(machine=_machine_from_args(args))
    config = ServingConfig(
        queue_capacity=args.queue_capacity,
        admission=args.admission,
        pool_size=args.pool_size,
        batching=not args.no_batching,
        max_batch_size=args.max_batch,
        max_linger_s=args.linger_ms * 1e-3,
        tenants=tenants,
    )
    feeds = make_inputs(graph)
    names = tenants.names if tenants is not None else ()
    with engine.serve(graph, config=config) as frontend:
        info = frontend.lane_info()
        print(
            f"serving {graph.name}: batching "
            f"{'on' if config.batching else 'off'}, stacked execution "
            f"{'on' if info['stackable'] else 'off (' + info['stack_reason'] + ')'}"
        )
        if names:
            classes = ", ".join(
                f"{name}={tenants.resolve(name).priority}" for name in names
            )
            print(f"tenants (round-robin traffic): {classes}")
        frontend.request(feeds)  # warm-up: weights + arena, paid once
        load = run_closed_loop(
            lambda i: frontend.request(
                feeds, tenant=names[i % len(names)] if names else None
            ),
            n_requests=args.requests,
            concurrency=args.concurrency,
        )
        hist = frontend.registry.histogram(
            "duet_request_latency_seconds"
        ).merged()
        batches = frontend.registry.counter("duet_batches_total")
        print(
            f"{load.n_requests} requests, {args.concurrency} clients: "
            f"{load.throughput_rps:.0f} req/s ({load.n_errors} errors)"
        )
        quantiles = {q: hist.quantile_estimate(q) for q in (0.5, 0.95, 0.99)}
        print(
            "latency "
            + "  ".join(
                f"p{int(q * 100)} {value * 1e3:.3f} ms"
                + (" (>= clamped)" if overflowed else "")
                for q, (value, overflowed) in quantiles.items()
            )
        )
        if any(overflowed for _, overflowed in quantiles.values()):
            print(
                f"warning: {hist.overflow_count} of {hist.count} "
                "observations exceeded the largest histogram bucket "
                f"({hist.bounds[-1] * 1e3:.0f} ms); clamped quantiles are "
                "lower bounds, not estimates",
                file=sys.stderr,
            )
        print(f"batches executed: {batches.total():.0f}")
        if names:
            lane_name = info["model"]
            latency = frontend.registry.histogram(
                "duet_tenant_request_latency_seconds"
            )
            served = frontend.registry.counter("duet_tenant_requests_total")
            misses = frontend.registry.counter("duet_tenant_slo_miss_total")
            preempts = frontend.registry.counter(
                "duet_tenant_preemptions_total"
            )
            rows = []
            for name in names:
                cfg = tenants.resolve(name)
                snap = latency.snapshot(model=lane_name, tenant=name)
                p99, clamped = snap.quantile_estimate(0.99)
                rows.append(
                    {
                        "tenant": name,
                        "class": cfg.priority,
                        "weight": cfg.weight,
                        "ok": int(
                            served.value(
                                model=lane_name, tenant=name, outcome="ok"
                            )
                        ),
                        "p99_ms": f"{p99 * 1e3:.3f}"
                        + (">=" if clamped else ""),
                        "slo_ms": (
                            "-" if cfg.slo_p99_s is None
                            else f"{cfg.slo_p99_s * 1e3:.1f}"
                        ),
                        "misses": int(
                            misses.value(model=lane_name, tenant=name)
                        ),
                        "preempted": int(
                            preempts.value(model=lane_name, tenant=name)
                        ),
                    }
                )
            print()
            print(format_table(rows, title="per-tenant scoreboard"))
        if args.metrics:
            print()
            print(frontend.render_metrics(), end="")
    return 0


def _cmd_chaos_serve(args: argparse.Namespace) -> int:
    """Scripted fault schedule against the serving frontend, with the
    resilience invariants checked."""
    from repro.bench import default_chaos_schedule, run_chaos_serve

    schedule = default_chaos_schedule(
        phase_s=args.phase_seconds, device=args.lose_device
    )
    report = run_chaos_serve(
        schedule=schedule,
        model=args.model,
        tiny=args.tiny,
        concurrency=args.concurrency,
        pool_size=args.pool_size,
        deadline_s=args.deadline_ms * 1e-3,
        seed=args.seed,
        recovery_threshold=args.recovery_threshold,
    )
    text = report.render()
    print(text)
    if args.metrics:
        print()
        print(report.metrics_text, end="")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
            if args.metrics:
                fh.write("\n" + report.metrics_text)
        print(f"chaos report written to {args.output}")
    if not report.ok and not args.no_strict:
        return 1
    return 0


def _cmd_slo_bench(args: argparse.Namespace) -> int:
    """Mixed-priority SLO benchmark: critical latency vs best-effort
    throughput, with the two-sided scheduling invariants checked."""
    import json as _json

    from repro.bench import run_slo_mix

    report = run_slo_mix(
        duration_s=args.duration_seconds,
        model=args.model,
        tiny=args.tiny,
        critical_clients=args.critical_clients,
        critical_think_s=args.critical_think_ms * 1e-3,
        critical_slo_s=args.slo_ms * 1e-3,
        best_effort_clients=args.best_effort_clients,
        seed=args.seed,
        be_threshold=args.best_effort_threshold,
        pool_size=args.pool_size,
    )
    print(report.render())
    if args.metrics:
        print()
        print(report.metrics_text, end="")
    if args.output:
        report.write_scoreboard(args.output)
        print(f"slo scoreboard written to {args.output}")
    if args.json:
        print(_json.dumps(report.scoreboard(), indent=2))
    if not report.ok and not args.no_strict:
        return 1
    return 0


def _cmd_tournament(args: argparse.Namespace) -> int:
    """League table: every scheduling policy x every model, both transfer
    disciplines."""
    from repro.bench import (
        TOURNAMENT_MODELS,
        league_table,
        run_tournament,
        tournament_winner,
    )
    models = tuple(args.models) if args.models else TOURNAMENT_MODELS
    policies = tuple(args.policies) if args.policies else None
    rows = run_tournament(
        models=models,
        policies=policies,
        machine=_machine_from_args(args),
        seed=args.seed,
        tiny=args.tiny,
    )
    table = league_table(rows)
    lazy_winner = tournament_winner(rows)
    overlap_winner = tournament_winner(rows, column="overlap_ms")
    summary = (
        f"league winners — lazy: {lazy_winner}, overlapped: {overlap_winner}"
    )
    print(table)
    print(summary)
    forfeits = [r for r in rows if r.get("note")]
    for r in forfeits:
        print(
            f"forfeit: {r['policy']} on {r['model']}: {r['note']}",
            file=sys.stderr,
        )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(table + "\n" + summary + "\n")
        print(f"league table written to {args.output}")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    """Differential fuzzing: random graphs through every execution path."""
    from repro.testing import GeneratorConfig, run_campaign

    config = GeneratorConfig(max_ops=args.max_ops)
    machine = default_machine(noisy=False)

    def progress(case, diff):
        if args.verbose or not diff.ok:
            ops = len(case.graph.pruned().op_nodes())
            status = "ok" if diff.ok else "FAIL"
            print(f"  case {case.index:4d} ({ops:3d} ops): {status}")

    backend = getattr(args, "backend", "numpy")
    if backend == "native":
        from repro.compiler.native import native_available

        if not native_available():
            print(
                "warning: no C compiler found — native kernels fall back "
                "to NumPy (the native oracle arms are marked skipped)",
                file=sys.stderr,
            )

    report = run_campaign(
        args.seed,
        args.count,
        config=config,
        machine=machine,
        minimize=not args.no_minimize,
        artifact_dir=args.artifact_dir,
        time_budget_s=args.time_budget,
        progress=progress,
        backend=backend,
    )
    print(report.summary())
    for failure in report.failures:
        print(failure.describe())
    if report.failures:
        print(
            "\nreproduce with: python -m repro fuzz "
            f"--seed {args.seed} --count {args.count}"
            + (f" --backend {backend}" if backend != "numpy" else "")
        )
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DUET reproduction: schedule DNN inference across CPU+GPU",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list models and experiments").set_defaults(
        fn=_cmd_list
    )

    p_info = sub.add_parser("info", help="model and partition statistics")
    p_info.add_argument("model", choices=MODEL_NAMES)
    p_info.add_argument("--tiny", action="store_true", help="test-scale config")
    p_info.set_defaults(fn=_cmd_info)

    p_print = sub.add_parser("print", help="dump the Relay-style IR")
    p_print.add_argument("model", choices=MODEL_NAMES)
    p_print.add_argument("--tiny", action="store_true")
    p_print.set_defaults(fn=_cmd_print)

    p_opt = sub.add_parser("optimize", help="run the full DUET pipeline")
    p_opt.add_argument("model", nargs="?", choices=MODEL_NAMES)
    p_opt.add_argument(
        "--spec", default=None, metavar="PATH",
        help="optimize a declarative JSON model spec instead of a zoo model",
    )
    p_opt.add_argument("--tiny", action="store_true")
    p_opt.add_argument("--noisy", action="store_true", help="enable latency noise")
    p_opt.add_argument(
        "--runs", type=int, default=0,
        help="additionally sample a latency distribution of this many runs",
    )
    p_opt.add_argument(
        "--session-runs", type=int, default=0, metavar="N",
        help="serve N requests through a reusable engine session and "
        "report the measured per-request wall time",
    )
    p_opt.add_argument(
        "--profile-cache", default=None, metavar="PATH",
        help="reuse/write the offline profiling artifact at PATH",
    )
    p_opt.set_defaults(fn=_cmd_optimize)

    p_bench = sub.add_parser("bench", help="run one paper experiment")
    p_bench.add_argument("experiment")
    p_bench.set_defaults(fn=_cmd_bench)

    p_report = sub.add_parser(
        "report", help="regenerate every experiment table into a directory"
    )
    p_report.add_argument("--output", default="results", metavar="DIR")
    p_report.add_argument(
        "--runs", type=int, default=2000,
        help="sample count for the tail-latency experiment",
    )
    p_report.set_defaults(fn=_cmd_report)

    p_serve = sub.add_parser(
        "serve",
        help="drive the multi-tenant serving frontend with closed-loop load",
    )
    p_serve.add_argument(
        "model", nargs="?", choices=MODEL_NAMES,
        help="zoo model to serve (default: a stack-safe elementwise chain)",
    )
    p_serve.add_argument("--tiny", action="store_true", help="test-scale config")
    p_serve.add_argument(
        "--requests", type=int, default=200, metavar="N",
        help="number of requests to serve",
    )
    p_serve.add_argument(
        "--concurrency", type=int, default=8, metavar="K",
        help="closed-loop client threads",
    )
    p_serve.add_argument(
        "--max-batch", type=int, default=8, help="dynamic batch size cap"
    )
    p_serve.add_argument(
        "--linger-ms", type=float, default=2.0,
        help="max time a batch window waits for company",
    )
    p_serve.add_argument(
        "--pool-size", type=int, default=1, help="worker sessions per model"
    )
    p_serve.add_argument(
        "--queue-capacity", type=int, default=64,
        help="bound of the admission queue",
    )
    p_serve.add_argument(
        "--admission", choices=("block", "reject"), default="block",
        help="backpressure mode when the queue is full",
    )
    p_serve.add_argument(
        "--no-batching", action="store_true",
        help="serve every request as its own dispatch",
    )
    p_serve.add_argument(
        "--metrics", action="store_true",
        help="print the Prometheus-style metrics exposition after the run",
    )
    p_serve.add_argument(
        "--mesh", default=None, metavar="FILE",
        help="serve on an N-device mesh loaded from a topology JSON file "
        "(see examples/mesh.json) instead of the default CPU+GPU machine",
    )
    p_serve.add_argument(
        "--tenants", default=None, metavar="FILE",
        help="tenants JSON file (see examples/tenants.json); traffic is "
        "spread round-robin across the registered tenants and a "
        "per-tenant scoreboard is printed",
    )
    p_serve.set_defaults(fn=_cmd_serve)

    p_chaos = sub.add_parser(
        "chaos-serve",
        help="scripted fault schedule against the serving frontend "
        "(transients -> stalls -> device loss -> recovery), invariants on",
    )
    p_chaos.add_argument(
        "model", nargs="?", choices=MODEL_NAMES, default="siamese",
        help="zoo model to serve under chaos (default: siamese)",
    )
    p_chaos.add_argument(
        "--tiny", action="store_true", default=True,
        help="test-scale model configuration (default: on)",
    )
    p_chaos.add_argument(
        "--full-size", dest="tiny", action="store_false",
        help="full-size model configuration",
    )
    p_chaos.add_argument(
        "--phase-seconds", type=float, default=1.0, metavar="S",
        help="duration of each fault phase",
    )
    p_chaos.add_argument(
        "--concurrency", type=int, default=4, metavar="K",
        help="closed-loop client threads",
    )
    p_chaos.add_argument(
        "--pool-size", type=int, default=2, help="worker sessions per model"
    )
    p_chaos.add_argument(
        "--deadline-ms", type=float, default=2000.0,
        help="per-request deadline budget",
    )
    p_chaos.add_argument(
        "--lose-device", choices=("cpu", "gpu"), default="gpu",
        help="device killed during the outage phase",
    )
    p_chaos.add_argument(
        "--recovery-threshold", type=float, default=0.8,
        help="required post-recovery throughput as a fraction of baseline",
    )
    p_chaos.add_argument(
        "--seed", type=int, default=0, help="corpus and jitter seed"
    )
    p_chaos.add_argument(
        "--metrics", action="store_true",
        help="also print the final metrics exposition",
    )
    p_chaos.add_argument(
        "--output", default=None, metavar="FILE",
        help="write the chaos report to this file",
    )
    p_chaos.add_argument(
        "--no-strict", action="store_true",
        help="exit 0 even when resilience invariants fail",
    )
    p_chaos.set_defaults(fn=_cmd_chaos_serve)

    p_slo = sub.add_parser(
        "slo-bench",
        help="mixed-priority SLO benchmark: a paced critical tenant vs a "
        "best-effort flood, two-sided invariants checked",
    )
    p_slo.add_argument(
        "model", nargs="?", choices=MODEL_NAMES, default="wide_deep",
        help="zoo model to serve (default: wide_deep, the multi-phase "
        "model, so preemption points exist)",
    )
    p_slo.add_argument(
        "--tiny", action="store_true", default=True,
        help="test-scale model configuration (default: on)",
    )
    p_slo.add_argument(
        "--full-size", dest="tiny", action="store_false",
        help="full-size model configuration",
    )
    p_slo.add_argument(
        "--duration-seconds", type=float, default=2.0, metavar="S",
        help="length of each leg (isolated baseline, then the mix)",
    )
    p_slo.add_argument(
        "--critical-clients", type=int, default=1, metavar="K",
        help="paced interactive clients on the critical tenant",
    )
    p_slo.add_argument(
        "--critical-think-ms", type=float, default=50.0,
        help="critical client idle time between requests",
    )
    p_slo.add_argument(
        "--slo-ms", type=float, default=250.0,
        help="critical tenant's p99 SLO target",
    )
    p_slo.add_argument(
        "--best-effort-clients", type=int, default=4, metavar="K",
        help="closed-loop flood threads on the best-effort tenant",
    )
    p_slo.add_argument(
        "--best-effort-threshold", type=float, default=0.7,
        help="required best-effort throughput as a fraction of its "
        "isolated baseline",
    )
    p_slo.add_argument(
        "--pool-size", type=int, default=1, help="worker sessions per model"
    )
    p_slo.add_argument(
        "--seed", type=int, default=0, help="input-corpus seed"
    )
    p_slo.add_argument(
        "--metrics", action="store_true",
        help="also print the final metrics exposition",
    )
    p_slo.add_argument(
        "--json", action="store_true",
        help="also print the scoreboard as JSON",
    )
    p_slo.add_argument(
        "--output", default=None, metavar="FILE",
        help="write the per-tenant scoreboard (JSON) to this file",
    )
    p_slo.add_argument(
        "--no-strict", action="store_true",
        help="exit 0 even when SLO invariants fail",
    )
    p_slo.set_defaults(fn=_cmd_slo_bench)

    p_tournament = sub.add_parser(
        "tournament",
        help="scheduler league: every policy x model, lazy vs. overlap",
    )
    p_tournament.add_argument(
        "--models", nargs="+", default=None, metavar="NAME",
        help="tournament models (zoo names plus 'xfer_bound'; default league)",
    )
    p_tournament.add_argument(
        "--policies", nargs="+", default=None, metavar="POLICY",
        help="scheduling policies to enter (default: all registered)",
    )
    p_tournament.add_argument(
        "--mesh", default=None, metavar="FILE",
        help="run the league on an N-device mesh loaded from a topology "
        "JSON file (see examples/mesh.json)",
    )
    p_tournament.add_argument(
        "--seed", type=int, default=0, help="seed for stochastic policies"
    )
    p_tournament.add_argument(
        "--tiny", action="store_true", help="tiny model configurations (CI smoke)"
    )
    p_tournament.add_argument(
        "--output", default=None, metavar="FILE",
        help="also write the league table to this file",
    )
    p_tournament.set_defaults(fn=_cmd_tournament)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential conformance fuzzing across all execution paths",
    )
    p_fuzz.add_argument(
        "--seed", type=int, default=0, help="campaign seed (case i depends only on (seed, i))"
    )
    p_fuzz.add_argument("--count", type=int, default=50, help="number of cases")
    p_fuzz.add_argument(
        "--max-ops", type=int, default=24, help="target operator-count ceiling"
    )
    p_fuzz.add_argument(
        "--artifact-dir", default=None, metavar="DIR",
        help="write minimized JSON repro artifacts for failures here",
    )
    p_fuzz.add_argument(
        "--no-minimize", action="store_true",
        help="skip shrinking failing graphs",
    )
    p_fuzz.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="stop starting new cases after this much wall time",
    )
    p_fuzz.add_argument(
        "--verbose", action="store_true", help="print every case, not just failures"
    )
    p_fuzz.add_argument(
        "--backend", choices=("numpy", "native"), default="numpy",
        help="kernel backend for every compiled oracle arm (native = "
        "C renderer + .so cache under the ULP comparison policy)",
    )
    p_fuzz.set_defaults(fn=_cmd_fuzz)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
