"""SqueezeNet (Iandola et al. 2016).

Cited by the paper (§III-A) among the sequential models TVM's scheduling
already handles well.  Structurally interesting for DUET nonetheless: each
*fire module* squeezes with a 1x1 conv and then expands through **two
parallel conv branches** (1x1 and 3x3) — so the partitioner produces many
small multi-path phases, all conv-heavy.  The expected outcome is still a
fallback to the GPU: both branches of every fire module prefer the same
device, so co-execution only adds transfers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.builder import GraphBuilder, Var
from repro.ir.graph import Graph
from repro.models.common import conv_bn_relu

__all__ = ["SqueezeNetConfig", "build_squeezenet"]

# (squeeze, expand1x1, expand3x3) per fire module, with pools between.
_FIRE_PLAN = (
    (16, 64, 64),
    (16, 64, 64),
    "M",
    (32, 128, 128),
    (32, 128, 128),
    "M",
    (48, 192, 192),
    (48, 192, 192),
    (64, 256, 256),
    (64, 256, 256),
)


@dataclass(frozen=True)
class SqueezeNetConfig:
    """Configuration of SqueezeNet v1.1-style network."""

    batch: int = 1
    image_size: int = 224
    num_classes: int = 1000


def _fire(b: GraphBuilder, x: Var, squeeze: int, e1: int, e3: int, prefix: str) -> Var:
    s = conv_bn_relu(b, x, squeeze, 1, 1, 0, f"{prefix}_sq")
    left = conv_bn_relu(b, s, e1, 1, 1, 0, f"{prefix}_e1")
    right = conv_bn_relu(b, s, e3, 3, 1, 1, f"{prefix}_e3")
    return b.op("concat", left, right, axis=1)


def build_squeezenet(cfg: SqueezeNetConfig | None = None) -> Graph:
    """A SqueezeNet classifier graph."""
    cfg = cfg or SqueezeNetConfig()
    b = GraphBuilder("squeezenet")
    y = b.input("image", (cfg.batch, 3, cfg.image_size, cfg.image_size))
    y = conv_bn_relu(b, y, 64, 3, 2, 1, "stem")
    y = b.op("max_pool2d", y, pool_size=(3, 3), strides=(2, 2), padding=(1, 1))
    for i, item in enumerate(_FIRE_PLAN):
        if item == "M":
            y = b.op(
                "max_pool2d", y, pool_size=(3, 3), strides=(2, 2), padding=(1, 1)
            )
        else:
            sq, e1, e3 = item
            y = _fire(b, y, sq, e1, e3, f"fire{i}")
    # Classifier: 1x1 conv to classes + global average pool.
    y = conv_bn_relu(b, y, cfg.num_classes, 1, 1, 0, "cls")
    y = b.op("global_avg_pool2d", y)
    y = b.op("reshape", y, shape=(cfg.batch, cfg.num_classes))
    return b.build(b.op("softmax", y, axis=-1))
