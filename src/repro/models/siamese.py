"""Siamese LSTM network for text-similarity ranking (Neculoiu et al. 2016).

Two structurally identical LSTM towers encode a query and a candidate
passage; the towers *share weights* (the same parameter nodes feed both
branches — exercising DUET's shared-node handling, §IV-A) and are joined by
an L1-distance similarity head.  The two towers are independent until the
join, forming one clean multi-path phase with two subgraphs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.ir.builder import GraphBuilder, Var
from repro.ir.graph import Graph
from repro.models.common import dense_layer, last_timestep

__all__ = ["SiameseConfig", "build_siamese"]


@dataclass(frozen=True)
class SiameseConfig:
    """Configuration of the Siamese network (paper Table I defaults).

    Attributes:
        batch: batch size.
        seq_len: token sequence length of each side.
        embed_dim: input embedding width (word2vec-scale).
        hidden: LSTM hidden width.  The reference implementation uses a
            wide recurrent state; a wide LSTM is compute-bound enough that
            the GPU tower is < 2x slower than the CPU tower, which is what
            makes splitting the two towers across devices profitable.
        num_layers: stacked LSTM layers per tower.
        proj_units: projection width before the distance head.
    """

    batch: int = 1
    seq_len: int = 64
    embed_dim: int = 300
    hidden: int = 1536
    num_layers: int = 1
    proj_units: int = 128

    def with_batch(self, b: int) -> "SiameseConfig":
        return replace(self, batch=b)


def build_siamese(cfg: SiameseConfig | None = None) -> Graph:
    """Construct the Siamese network graph."""
    cfg = cfg or SiameseConfig()
    b = GraphBuilder("siamese")

    left_in = b.input("query", (cfg.batch, cfg.seq_len, cfg.embed_dim))
    right_in = b.input("passage", (cfg.batch, cfg.seq_len, cfg.embed_dim))

    # Shared tower parameters: one set of constants, consumed by both sides.
    weights: list[tuple[Var, Var, Var]] = []
    in_dim = cfg.embed_dim
    for i in range(cfg.num_layers):
        w_ih = b.const((4 * cfg.hidden, in_dim), name=f"tower_l{i}_wih")
        w_hh = b.const((4 * cfg.hidden, cfg.hidden), name=f"tower_l{i}_whh")
        bias = b.const((4 * cfg.hidden,), name=f"tower_l{i}_bias")
        weights.append((w_ih, w_hh, bias))
        in_dim = cfg.hidden
    proj_w = b.const((cfg.proj_units, cfg.hidden), name="tower_proj_w")
    proj_b = b.const((cfg.proj_units,), name="tower_proj_b")

    def tower(x: Var) -> Var:
        y = x
        for w_ih, w_hh, bias in weights:
            y = b.op(
                "lstm", y, w_ih, w_hh, bias,
                hidden_size=cfg.hidden, return_sequences=True,
            )
        y = last_timestep(b, y)
        return b.op("tanh", b.op("bias_add", b.op("dense", y, proj_w), proj_b))

    left = tower(left_in)
    right = tower(right_in)

    # |l - r| -> dense -> sigmoid similarity score.
    dist = b.op("abs", b.op("subtract", left, right))
    score = dense_layer(b, dist, 1, "score", activation=None)
    return b.build(b.op("sigmoid", score))
