"""Wide-and-Deep network (Cheng et al. 2016), paper Fig. 2.

Four parallel branches encode heterogeneous content — this is the paper's
flagship workload because the branches prefer *different* devices:

* **wide**: a single linear layer over cross-product features (trivial),
* **deep**: an FFN over dense features (fast everywhere, Fig. 16),
* **rnn**: stacked LSTMs over a token sequence (CPU-friendly, Fig. 14),
* **cnn**: a ResNet encoder over an image (GPU-friendly, Fig. 15),

joined by a concat and a small prediction head.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.ir.builder import GraphBuilder
from repro.ir.graph import Graph
from repro.models.common import (
    dense_layer,
    last_timestep,
    mlp,
    stacked_lstm,
)
from repro.models.resnet import ResNetConfig, resnet_backbone

__all__ = ["WideDeepConfig", "build_wide_deep"]


@dataclass(frozen=True)
class WideDeepConfig:
    """Configuration of the Wide-and-Deep model (paper Table I defaults).

    Attributes:
        batch: batch size (1 for the latency experiments).
        wide_dim: width of the sparse cross-product feature vector.
        deep_dim: width of the dense feature vector.
        ffn_layers: hidden layers of the deep branch (Fig. 16 sweeps this).
        ffn_hidden: hidden width of the deep branch.
        seq_len: token-sequence length seen by the RNN branch.
        embed_dim: token embedding width (the RNN input size).
        rnn_hidden: LSTM hidden width.
        rnn_layers: stacked LSTM count (Fig. 14 sweeps 1/2/4/8).
        cnn_depth: ResNet depth of the CNN branch (Fig. 15 sweeps this).
        image_size: CNN input resolution.
        branch_units: width each branch projects to before the concat.
        num_classes: output width of the prediction head.
    """

    batch: int = 1
    wide_dim: int = 2048
    deep_dim: int = 512
    ffn_layers: int = 3
    ffn_hidden: int = 1024
    seq_len: int = 100
    embed_dim: int = 256
    rnn_hidden: int = 256
    rnn_layers: int = 1
    cnn_depth: int = 18
    image_size: int = 224
    branch_units: int = 256
    num_classes: int = 64

    def with_rnn_layers(self, n: int) -> "WideDeepConfig":
        return replace(self, rnn_layers=n)

    def with_cnn_depth(self, d: int) -> "WideDeepConfig":
        return replace(self, cnn_depth=d)

    def with_ffn_layers(self, n: int) -> "WideDeepConfig":
        return replace(self, ffn_layers=n)

    def with_batch(self, b: int) -> "WideDeepConfig":
        return replace(self, batch=b)


def build_wide_deep(cfg: WideDeepConfig | None = None) -> Graph:
    """Construct the Wide-and-Deep graph of paper Fig. 2."""
    cfg = cfg or WideDeepConfig()
    b = GraphBuilder(f"wide_deep_rnn{cfg.rnn_layers}_cnn{cfg.cnn_depth}")

    wide_in = b.input("wide_features", (cfg.batch, cfg.wide_dim))
    deep_in = b.input("deep_features", (cfg.batch, cfg.deep_dim))
    text_in = b.input("text_embeddings", (cfg.batch, cfg.seq_len, cfg.embed_dim))
    image_in = b.input("image", (cfg.batch, 3, cfg.image_size, cfg.image_size))

    # Wide branch: memorization via a single linear projection.
    wide = dense_layer(b, wide_in, cfg.branch_units, "wide", activation=None)

    # Deep branch: generalization via an FFN.
    hidden = [cfg.ffn_hidden] * cfg.ffn_layers + [cfg.branch_units]
    deep = mlp(b, deep_in, hidden, prefix="deep")

    # RNN branch: sequential text encoding.
    rnn_seq = stacked_lstm(
        b, text_in, cfg.rnn_hidden, cfg.rnn_layers, prefix="rnn",
        return_sequences=True,
    )
    rnn_last = last_timestep(b, rnn_seq)
    rnn = dense_layer(b, rnn_last, cfg.branch_units, "rnn_proj")

    # CNN branch: image encoding via ResNet.
    res_cfg = ResNetConfig(
        depth=cfg.cnn_depth, batch=cfg.batch, image_size=cfg.image_size
    )
    cnn_feat = resnet_backbone(b, image_in, res_cfg, prefix="cnn")
    cnn = dense_layer(b, cnn_feat, cfg.branch_units, "cnn_proj")

    # Joint head.
    joint = b.op("concat", wide, deep, rnn, cnn, axis=1)
    head = dense_layer(b, joint, cfg.branch_units, "head_fc")
    logits = dense_layer(b, head, cfg.num_classes, "head_out", activation=None)
    probs = b.op("softmax", logits, axis=-1)
    return b.build(probs)
