"""Layer-level building blocks shared by the model zoo.

Every helper takes the :class:`~repro.ir.builder.GraphBuilder` plus input
:class:`~repro.ir.builder.Var` handles and returns output Vars, creating
parameter constants with deterministic, human-readable names.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.ir.builder import GraphBuilder, Var
from repro.ir.node import Initializer

__all__ = [
    "dense_layer",
    "mlp",
    "lstm_layer",
    "stacked_lstm",
    "last_timestep",
    "conv_bn_relu",
    "basic_block",
    "bottleneck_block",
    "transformer_encoder_layer",
]


def dense_layer(
    b: GraphBuilder,
    x: Var,
    units: int,
    prefix: str,
    activation: str | None = "relu",
) -> Var:
    """Fully-connected layer: dense + bias (+ activation)."""
    in_dim = x.shape[-1]
    w = b.const((units, in_dim), name=f"{prefix}_w")
    bias = b.const((units,), name=f"{prefix}_b")
    y = b.op("bias_add", b.op("dense", x, w), bias)
    if activation is not None:
        y = b.op(activation, y)
    return y


def mlp(
    b: GraphBuilder,
    x: Var,
    hidden_sizes: Sequence[int],
    prefix: str,
    activation: str = "relu",
    final_activation: str | None = None,
) -> Var:
    """Stack of dense layers; the last layer uses ``final_activation``."""
    y = x
    for i, units in enumerate(hidden_sizes):
        act = activation if i < len(hidden_sizes) - 1 else final_activation
        y = dense_layer(b, y, units, prefix=f"{prefix}_fc{i}", activation=act)
    return y


def lstm_layer(
    b: GraphBuilder,
    x: Var,
    hidden: int,
    prefix: str,
    return_sequences: bool = True,
) -> Var:
    """One LSTM layer over ``[B, T, I]`` input."""
    in_dim = x.shape[-1]
    w_ih = b.const((4 * hidden, in_dim), name=f"{prefix}_wih")
    w_hh = b.const((4 * hidden, hidden), name=f"{prefix}_whh")
    bias = b.const((4 * hidden,), name=f"{prefix}_bias")
    return b.op(
        "lstm",
        x,
        w_ih,
        w_hh,
        bias,
        hidden_size=hidden,
        return_sequences=return_sequences,
    )


def stacked_lstm(
    b: GraphBuilder,
    x: Var,
    hidden: int,
    num_layers: int,
    prefix: str,
    return_sequences: bool = False,
) -> Var:
    """Stack of LSTM layers; only the last can drop the time dimension."""
    y = x
    for i in range(num_layers):
        last = i == num_layers - 1
        y = lstm_layer(
            b,
            y,
            hidden,
            prefix=f"{prefix}_l{i}",
            return_sequences=return_sequences or not last,
        )
    return y


def last_timestep(b: GraphBuilder, x: Var) -> Var:
    """Select the final timestep of a ``[B, T, H]`` sequence → ``[B, H]``."""
    bsz, t, h = x.shape
    sl = b.op(
        "strided_slice",
        x,
        begin=(0, t - 1, 0),
        end=(bsz, t, h),
    )
    return b.op("reshape", sl, shape=(bsz, h))


def conv_bn_relu(
    b: GraphBuilder,
    x: Var,
    out_channels: int,
    kernel: int,
    stride: int,
    padding: int,
    prefix: str,
    relu: bool = True,
) -> Var:
    """conv2d + batch_norm (+ relu), the ResNet workhorse."""
    in_channels = x.shape[1]
    w = b.const((out_channels, in_channels, kernel, kernel), name=f"{prefix}_w")
    y = b.op("conv2d", x, w, strides=(stride, stride), padding=(padding, padding))
    gamma = b.const((out_channels,), name=f"{prefix}_g")
    beta = b.const((out_channels,), name=f"{prefix}_be")
    mean = b.const((out_channels,), name=f"{prefix}_m")
    # Variance must be positive for batch_norm's sqrt; ones is the standard
    # choice for synthetic weights.
    var = b.const((out_channels,), name=f"{prefix}_v", init=Initializer.ONES)
    y = b.op("batch_norm", y, gamma, beta, mean, var)
    if relu:
        y = b.op("relu", y)
    return y


def basic_block(
    b: GraphBuilder, x: Var, out_channels: int, stride: int, prefix: str
) -> Var:
    """ResNet-18/34 basic residual block (two 3x3 convs + skip)."""
    identity = x
    y = conv_bn_relu(b, x, out_channels, 3, stride, 1, f"{prefix}_c1")
    y = conv_bn_relu(b, y, out_channels, 3, 1, 1, f"{prefix}_c2", relu=False)
    if stride != 1 or x.shape[1] != out_channels:
        identity = conv_bn_relu(
            b, x, out_channels, 1, stride, 0, f"{prefix}_down", relu=False
        )
    return b.op("relu", b.op("add", y, identity))


def bottleneck_block(
    b: GraphBuilder, x: Var, out_channels: int, stride: int, prefix: str
) -> Var:
    """ResNet-50/101 bottleneck block (1x1 → 3x3 → 1x1, 4x expansion)."""
    identity = x
    mid = out_channels // 4
    y = conv_bn_relu(b, x, mid, 1, 1, 0, f"{prefix}_c1")
    y = conv_bn_relu(b, y, mid, 3, stride, 1, f"{prefix}_c2")
    y = conv_bn_relu(b, y, out_channels, 1, 1, 0, f"{prefix}_c3", relu=False)
    if stride != 1 or x.shape[1] != out_channels:
        identity = conv_bn_relu(
            b, x, out_channels, 1, stride, 0, f"{prefix}_down", relu=False
        )
    return b.op("relu", b.op("add", y, identity))


def transformer_encoder_layer(
    b: GraphBuilder,
    x: Var,
    num_heads: int,
    d_ff: int,
    prefix: str,
) -> Var:
    """Post-norm transformer encoder layer on ``[B, T, D]`` input.

    Multi-head self-attention is expressed with the IR's primitive ops
    (dense / reshape / transpose / batch_matmul / softmax), so the fusion
    pass and the device cost models see the real kernel structure.
    """
    bsz, t, d = x.shape
    if d % num_heads != 0:
        raise ValueError(f"d_model {d} not divisible by heads {num_heads}")
    dh = d // num_heads

    flat = b.op("reshape", x, shape=(bsz * t, d))

    def proj(name: str) -> Var:
        w = b.const((d, d), name=f"{prefix}_{name}_w")
        bias = b.const((d,), name=f"{prefix}_{name}_b")
        y = b.op("bias_add", b.op("dense", flat, w), bias)
        # [B*T, D] -> [B, T, H, dh] -> [B, H, T, dh] -> [B*H, T, dh]
        y = b.op("reshape", y, shape=(bsz, t, num_heads, dh))
        y = b.op("transpose", y, axes=(0, 2, 1, 3))
        return b.op("reshape", y, shape=(bsz * num_heads, t, dh))

    q, k, v = proj("q"), proj("k"), proj("v")
    kt = b.op("transpose", k, axes=(0, 2, 1))
    scores = b.op("batch_matmul", q, kt)  # [B*H, T, T]
    scale = b.literal(
        np.asarray([1.0 / dh**0.5], dtype=np.float32), name=f"{prefix}_scale"
    )
    scores = b.op("multiply", scores, scale)
    attn = b.op("softmax", scores, axis=-1)
    ctx = b.op("batch_matmul", attn, v)  # [B*H, T, dh]
    ctx = b.op("reshape", ctx, shape=(bsz, num_heads, t, dh))
    ctx = b.op("transpose", ctx, axes=(0, 2, 1, 3))
    ctx = b.op("reshape", ctx, shape=(bsz * t, d))

    w_o = b.const((d, d), name=f"{prefix}_o_w")
    b_o = b.const((d,), name=f"{prefix}_o_b")
    attn_out = b.op("bias_add", b.op("dense", ctx, w_o), b_o)

    # Residual + layer norm.
    res1 = b.op("add", attn_out, flat)
    g1 = b.const((d,), name=f"{prefix}_ln1_g")
    be1 = b.const((d,), name=f"{prefix}_ln1_b")
    norm1 = b.op("layer_norm", res1, g1, be1)

    # Feed-forward.
    w1 = b.const((d_ff, d), name=f"{prefix}_ff1_w")
    bf1 = b.const((d_ff,), name=f"{prefix}_ff1_b")
    w2 = b.const((d, d_ff), name=f"{prefix}_ff2_w")
    bf2 = b.const((d,), name=f"{prefix}_ff2_b")
    ff = b.op("gelu", b.op("bias_add", b.op("dense", norm1, w1), bf1))
    ff = b.op("bias_add", b.op("dense", ff, w2), bf2)

    res2 = b.op("add", ff, norm1)
    g2 = b.const((d,), name=f"{prefix}_ln2_g")
    be2 = b.const((d,), name=f"{prefix}_ln2_b")
    norm2 = b.op("layer_norm", res2, g2, be2)
    return b.op("reshape", norm2, shape=(bsz, t, d))
