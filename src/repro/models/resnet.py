"""ResNet image classifiers (He et al. 2016).

Used three ways in the paper: as the CNN encoder inside Wide-and-Deep
(Fig. 15 varies its depth 18/34/50/101), as the "traditional model" for the
fallback experiment (Table III), and as the canonical example of a model
that is mostly sequential and GPU-friendly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import IRError
from repro.ir.builder import GraphBuilder, Var
from repro.ir.graph import Graph
from repro.models.common import basic_block, bottleneck_block, conv_bn_relu

__all__ = ["ResNetConfig", "build_resnet", "resnet_backbone"]

# (block builder is basic? , blocks per stage) keyed by depth
_STAGE_SPECS: dict[int, tuple[bool, tuple[int, int, int, int]]] = {
    18: (True, (2, 2, 2, 2)),
    34: (True, (3, 4, 6, 3)),
    50: (False, (3, 4, 6, 3)),
    101: (False, (3, 4, 23, 3)),
}


@dataclass(frozen=True)
class ResNetConfig:
    """Configuration of a ResNet classifier.

    Attributes:
        depth: 18, 34, 50 or 101.
        batch: batch size (paper default: 1).
        image_size: input height/width (224 in the paper; tests use small
            sizes to keep full-numeric runs fast).
        num_classes: classifier width.
        base_channels: width of the first stage (64 in the standard model).
    """

    depth: int = 18
    batch: int = 1
    image_size: int = 224
    num_classes: int = 1000
    base_channels: int = 64

    def __post_init__(self) -> None:
        if self.depth not in _STAGE_SPECS:
            raise IRError(
                f"unsupported ResNet depth {self.depth}; "
                f"choose from {sorted(_STAGE_SPECS)}"
            )


def resnet_backbone(
    b: GraphBuilder, image: Var, cfg: ResNetConfig, prefix: str = "res"
) -> Var:
    """The convolutional trunk: image ``[B,3,S,S]`` → features ``[B, C]``."""
    use_basic, stage_blocks = _STAGE_SPECS[cfg.depth]
    block = basic_block if use_basic else bottleneck_block
    expansion = 1 if use_basic else 4

    y = conv_bn_relu(b, image, cfg.base_channels, 7, 2, 3, f"{prefix}_stem")
    y = b.op("max_pool2d", y, pool_size=(3, 3), strides=(2, 2), padding=(1, 1))
    channels = cfg.base_channels
    for stage, num_blocks in enumerate(stage_blocks):
        out_channels = cfg.base_channels * (2**stage) * expansion
        for i in range(num_blocks):
            stride = 2 if (stage > 0 and i == 0) else 1
            y = block(b, y, out_channels, stride, f"{prefix}_s{stage}b{i}")
        channels = out_channels
    y = b.op("global_avg_pool2d", y)
    return b.op("reshape", y, shape=(cfg.batch, channels))


def build_resnet(cfg: ResNetConfig | None = None) -> Graph:
    """A complete ResNet classifier graph."""
    cfg = cfg or ResNetConfig()
    b = GraphBuilder(f"resnet{cfg.depth}")
    image = b.input("image", (cfg.batch, 3, cfg.image_size, cfg.image_size))
    feat = resnet_backbone(b, image, cfg)
    w = b.const((cfg.num_classes, feat.shape[-1]), name="head_w")
    bias = b.const((cfg.num_classes,), name="head_b")
    logits = b.op("bias_add", b.op("dense", feat, w), bias)
    probs = b.op("softmax", logits, axis=-1)
    return b.build(probs)
