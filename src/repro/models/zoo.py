"""Model zoo registry: the paper's workloads by name.

``build_model("wide_deep")`` returns the full-size evaluation model;
``tiny=True`` returns a scaled-down variant with identical *structure* for
fast full-numeric tests.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from repro.errors import IRError
from repro.ir.graph import Graph
from repro.models.mobilenet import MobileNetConfig, build_mobilenet
from repro.models.mtdnn import MTDNNConfig, build_mtdnn
from repro.models.resnet import ResNetConfig, build_resnet
from repro.models.siamese import SiameseConfig, build_siamese
from repro.models.squeezenet import SqueezeNetConfig, build_squeezenet
from repro.models.vgg import VGGConfig, build_vgg
from repro.models.wide_deep import WideDeepConfig, build_wide_deep

__all__ = ["MODEL_NAMES", "build_model", "default_config", "tiny_config"]

MODEL_NAMES = (
    "wide_deep", "siamese", "mtdnn", "resnet", "vgg", "squeezenet", "mobilenet",
)


def default_config(name: str):
    """The paper-scale configuration for a zoo model."""
    if name == "wide_deep":
        return WideDeepConfig()
    if name == "siamese":
        return SiameseConfig()
    if name == "mtdnn":
        return MTDNNConfig()
    if name == "resnet":
        return ResNetConfig(depth=50)
    if name == "vgg":
        return VGGConfig(depth=16)
    if name == "squeezenet":
        return SqueezeNetConfig()
    if name == "mobilenet":
        return MobileNetConfig()
    raise IRError(f"unknown model {name!r}; choose from {MODEL_NAMES}")


def tiny_config(name: str):
    """A structurally identical but numerically cheap configuration."""
    if name == "wide_deep":
        return WideDeepConfig(
            wide_dim=64,
            deep_dim=32,
            ffn_hidden=32,
            seq_len=6,
            embed_dim=16,
            rnn_hidden=16,
            cnn_depth=18,
            image_size=32,
            branch_units=16,
            num_classes=8,
        )
    if name == "siamese":
        return SiameseConfig(seq_len=5, embed_dim=12, hidden=12, proj_units=8)
    if name == "mtdnn":
        return MTDNNConfig(
            seq_len=8,
            vocab_size=100,
            d_model=16,
            num_heads=2,
            d_ff=32,
            num_layers=2,
            num_tasks=3,
            head_hidden=16,
            head_classes=4,
        )
    if name == "resnet":
        return ResNetConfig(depth=18, image_size=32, num_classes=10)
    if name == "vgg":
        return VGGConfig(depth=11, image_size=32, num_classes=10, fc_width=64)
    if name == "squeezenet":
        return SqueezeNetConfig(image_size=64, num_classes=10)
    if name == "mobilenet":
        return MobileNetConfig(image_size=32, num_classes=10, width_mult=0.25)
    raise IRError(f"unknown model {name!r}; choose from {MODEL_NAMES}")


_BUILDERS: dict[str, Callable] = {
    "wide_deep": build_wide_deep,
    "siamese": build_siamese,
    "mtdnn": build_mtdnn,
    "resnet": build_resnet,
    "vgg": build_vgg,
    "squeezenet": build_squeezenet,
    "mobilenet": build_mobilenet,
}


def build_model(name: str, config=None, tiny: bool = False, **overrides) -> Graph:
    """Build a zoo model by name.

    Args:
        name: one of :data:`MODEL_NAMES`.
        config: explicit config object (overrides ``tiny``).
        tiny: use the fast test-scale configuration.
        overrides: dataclass field overrides applied to the chosen config.
    """
    if name not in _BUILDERS:
        raise IRError(f"unknown model {name!r}; choose from {MODEL_NAMES}")
    if config is None:
        config = tiny_config(name) if tiny else default_config(name)
    if overrides:
        config = replace(config, **overrides)
    return _BUILDERS[name](config)
