"""MobileNet-V1 (Howard et al. 2017): depthwise-separable convolutions.

An edge-oriented sequential CNN: each block is a depthwise 3x3 conv
followed by a pointwise 1x1 conv.  Like ResNet/VGG it exercises DUET's
fallback path — but with a twist: depthwise convs have a *much* lower
arithmetic intensity than dense convs, so the CPU/GPU gap is narrower
than for the other CNNs, which stresses the fallback decision margin.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import IRError
from repro.ir.builder import GraphBuilder, Var
from repro.ir.graph import Graph
from repro.ir.node import Initializer
from repro.models.common import conv_bn_relu, dense_layer

__all__ = ["MobileNetConfig", "build_mobilenet"]

# (stride, out_channels) per depthwise-separable block (V1 layout).
_BLOCKS = (
    (1, 64),
    (2, 128),
    (1, 128),
    (2, 256),
    (1, 256),
    (2, 512),
    (1, 512),
    (1, 512),
    (1, 512),
    (1, 512),
    (1, 512),
    (2, 1024),
    (1, 1024),
)


@dataclass(frozen=True)
class MobileNetConfig:
    """Configuration of MobileNet-V1.

    Attributes:
        batch: batch size.
        image_size: input resolution (multiple of 32).
        num_classes: classifier width.
        width_mult: channel width multiplier (0 < a <= 1).
    """

    batch: int = 1
    image_size: int = 224
    num_classes: int = 1000
    width_mult: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.width_mult <= 1:
            raise IRError(f"width_mult must be in (0, 1], got {self.width_mult}")
        if self.image_size % 32 != 0:
            raise IRError("MobileNet image_size must be a multiple of 32")


def _dw_separable(
    b: GraphBuilder, x: Var, out_channels: int, stride: int, prefix: str
) -> Var:
    """Depthwise 3x3 (+BN+ReLU) then pointwise 1x1 (+BN+ReLU)."""
    channels = x.shape[1]
    dw_w = b.const((channels, 1, 3, 3), name=f"{prefix}_dw_w")
    y = b.op(
        "depthwise_conv2d", x, dw_w, strides=(stride, stride), padding=(1, 1)
    )
    gamma = b.const((channels,), name=f"{prefix}_dw_g")
    beta = b.const((channels,), name=f"{prefix}_dw_be")
    mean = b.const((channels,), name=f"{prefix}_dw_m")
    var = b.const((channels,), name=f"{prefix}_dw_v", init=Initializer.ONES)
    y = b.op("relu", b.op("batch_norm", y, gamma, beta, mean, var))
    return conv_bn_relu(b, y, out_channels, 1, 1, 0, f"{prefix}_pw")


def build_mobilenet(cfg: MobileNetConfig | None = None) -> Graph:
    """A complete MobileNet-V1 classifier graph."""
    cfg = cfg or MobileNetConfig()
    b = GraphBuilder("mobilenet_v1")

    def width(ch: int) -> int:
        return max(8, int(ch * cfg.width_mult))

    y = b.input("image", (cfg.batch, 3, cfg.image_size, cfg.image_size))
    y = conv_bn_relu(b, y, width(32), 3, 2, 1, "stem")
    for i, (stride, channels) in enumerate(_BLOCKS):
        y = _dw_separable(b, y, width(channels), stride, f"blk{i}")
    y = b.op("global_avg_pool2d", y)
    y = b.op("reshape", y, shape=(cfg.batch, width(1024)))
    logits = dense_layer(b, y, cfg.num_classes, "head", activation=None)
    return b.build(b.op("softmax", logits, axis=-1))
