"""VGG image classifiers (Simonyan & Zisserman 2015).

Cited by the paper (§III-A) as the canonical *sequential-chain* model for
which Operators-in-Sequence scheduling is already adequate — a pure conv
stack with no branch parallelism, so DUET is expected to fall back to the
GPU just like ResNet (Table III).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import IRError
from repro.ir.builder import GraphBuilder
from repro.ir.graph import Graph
from repro.models.common import conv_bn_relu, dense_layer

__all__ = ["VGGConfig", "build_vgg"]

# Channels per stage; "M" = max-pool.
_LAYOUTS: dict[int, tuple] = {
    11: (64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"),
    16: (
        64, 64, "M", 128, 128, "M", 256, 256, 256, "M",
        512, 512, 512, "M", 512, 512, 512, "M",
    ),
}


@dataclass(frozen=True)
class VGGConfig:
    """Configuration of a VGG classifier.

    Attributes:
        depth: 11 or 16.
        batch: batch size.
        image_size: input resolution (must survive 5 halvings).
        num_classes: classifier width.
        fc_width: width of the two hidden FC layers (4096 in the paper's
            original; smaller keeps parameter counts manageable).
    """

    depth: int = 16
    batch: int = 1
    image_size: int = 224
    num_classes: int = 1000
    fc_width: int = 4096

    def __post_init__(self) -> None:
        if self.depth not in _LAYOUTS:
            raise IRError(
                f"unsupported VGG depth {self.depth}; choose from "
                f"{sorted(_LAYOUTS)}"
            )
        if self.image_size % 32 != 0:
            raise IRError("VGG image_size must be a multiple of 32")


def build_vgg(cfg: VGGConfig | None = None) -> Graph:
    """A complete VGG classifier graph."""
    cfg = cfg or VGGConfig()
    b = GraphBuilder(f"vgg{cfg.depth}")
    y = b.input("image", (cfg.batch, 3, cfg.image_size, cfg.image_size))
    conv_idx = 0
    for item in _LAYOUTS[cfg.depth]:
        if item == "M":
            y = b.op("max_pool2d", y, pool_size=(2, 2), strides=(2, 2))
        else:
            y = conv_bn_relu(b, y, int(item), 3, 1, 1, f"conv{conv_idx}")
            conv_idx += 1
    y = b.op("flatten", y)
    y = dense_layer(b, y, cfg.fc_width, "fc0")
    y = dense_layer(b, y, cfg.fc_width, "fc1")
    logits = dense_layer(b, y, cfg.num_classes, "fc2", activation=None)
    return b.build(b.op("softmax", logits, axis=-1))
