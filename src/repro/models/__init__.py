"""The paper's workload zoo: Wide&Deep, Siamese, MT-DNN, ResNet."""

from repro.models.mobilenet import MobileNetConfig, build_mobilenet
from repro.models.mtdnn import MTDNNConfig, build_mtdnn
from repro.models.resnet import ResNetConfig, build_resnet
from repro.models.siamese import SiameseConfig, build_siamese
from repro.models.squeezenet import SqueezeNetConfig, build_squeezenet
from repro.models.vgg import VGGConfig, build_vgg
from repro.models.wide_deep import WideDeepConfig, build_wide_deep
from repro.models.zoo import MODEL_NAMES, build_model, default_config, tiny_config

__all__ = [
    "MODEL_NAMES",
    "MTDNNConfig",
    "MobileNetConfig",
    "ResNetConfig",
    "SiameseConfig",
    "SqueezeNetConfig",
    "VGGConfig",
    "WideDeepConfig",
    "build_model",
    "build_mtdnn",
    "build_mobilenet",
    "build_resnet",
    "build_siamese",
    "build_squeezenet",
    "build_vgg",
    "build_wide_deep",
    "default_config",
    "tiny_config",
]
