"""MT-DNN: multi-task deep neural network (Liu et al. 2020), paper Fig. 3.

A shared lexicon encoder (embedding) feeds a stacked bidirectional-style
transformer encoder, whose output fans out to several *independent*
task-specific heads.  The shared trunk is a sequential phase; the task
heads form a multi-path phase DUET can spread across CPU and GPU.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.ir.builder import GraphBuilder, Var
from repro.ir.dtype import INT64
from repro.ir.graph import Graph
from repro.models.common import mlp, transformer_encoder_layer

__all__ = ["MTDNNConfig", "build_mtdnn"]


@dataclass(frozen=True)
class MTDNNConfig:
    """Configuration of MT-DNN (paper Table I defaults).

    Attributes:
        batch: batch size.
        seq_len: token sequence length.
        vocab_size: lexicon size for the embedding table.
        d_model: transformer width.
        num_heads: attention heads.
        d_ff: transformer feed-forward width.
        num_layers: encoder layers in the shared trunk.
        num_tasks: independent task-specific output heads.
        head_hidden: hidden width of each task head's MLP.
        head_classes: classifier width of each task head.
    """

    batch: int = 1
    seq_len: int = 128
    vocab_size: int = 30000
    d_model: int = 256
    num_heads: int = 8
    d_ff: int = 1024
    num_layers: int = 4
    num_tasks: int = 6
    head_hidden: int = 1024
    head_classes: int = 16

    def with_batch(self, b: int) -> "MTDNNConfig":
        return replace(self, batch=b)


def build_mtdnn(cfg: MTDNNConfig | None = None) -> Graph:
    """Construct the MT-DNN graph of paper Fig. 3."""
    cfg = cfg or MTDNNConfig()
    b = GraphBuilder("mtdnn")

    tokens = b.input("tokens", (cfg.batch, cfg.seq_len), dtype=INT64)
    table = b.const(
        (cfg.vocab_size, cfg.d_model), name="lexicon_table", init_scale=0.02
    )
    x = b.op("embedding", table, tokens)  # [B, T, D]

    for layer in range(cfg.num_layers):
        x = transformer_encoder_layer(
            b, x, cfg.num_heads, cfg.d_ff, prefix=f"enc{layer}"
        )

    # [CLS]-style pooled representation: first timestep.
    pooled = b.op(
        "strided_slice",
        x,
        begin=(0, 0, 0),
        end=(cfg.batch, 1, cfg.d_model),
    )
    pooled = b.op("reshape", pooled, shape=(cfg.batch, cfg.d_model))

    # Independent task heads — the multi-path phase.
    heads: list[Var] = []
    for task in range(cfg.num_tasks):
        h = mlp(
            b,
            pooled,
            [cfg.head_hidden, cfg.head_hidden, cfg.head_classes],
            prefix=f"task{task}",
        )
        heads.append(b.op("softmax", h, axis=-1))
    return b.build(*heads)
