"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch everything with a single ``except`` clause while still being able
to discriminate between IR construction problems, compilation failures, and
scheduling/runtime issues.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class IRError(ReproError):
    """Malformed IR: bad graph structure, unknown node ids, etc."""


class ShapeError(IRError):
    """Operator shape inference failed for the given input types."""


class TypeCheckError(IRError):
    """Dtype mismatch between operator inputs."""


class GraphValidationError(IRError):
    """A graph-level invariant (acyclicity, dangling edge, ...) is violated."""


class UnknownOpError(IRError):
    """An operator name is not present in the op registry."""


class CompilerError(ReproError):
    """A compiler pass or lowering step failed."""


class PartitionError(ReproError):
    """Graph partitioning produced or detected an invalid phase structure."""


class SchedulingError(ReproError):
    """Subgraph placement/scheduling failed or was given invalid input."""


class ProfilingError(ReproError):
    """The compiler-aware profiler could not profile a subgraph."""


class ExecutionError(ReproError):
    """Runtime execution of a compiled module failed."""


class TransientKernelError(ExecutionError):
    """A kernel failed in a way that is expected to succeed on retry.

    Raised by the fault injector (and retryable by the resilient
    executor); a real deployment would map driver-level soft errors —
    ECC hiccups, launch timeouts, spurious OOM — onto this class.
    """


class TransferError(ExecutionError):
    """A host↔device transfer failed or delivered corrupted data."""


class DeviceLostError(ExecutionError):
    """A device disappeared permanently (fell off the bus, driver reset).

    Unlike :class:`TransientKernelError` this is *not* retryable on the
    same device; the resilient executor reacts by failing over the dead
    device's remaining work to the survivor.

    Attributes:
        device: placement name of the lost device (``"cpu"``/``"gpu"``
            on the default machine; any mesh device name otherwise).
    """

    def __init__(self, device: str, message: str | None = None):
        super().__init__(message or f"device {device!r} was lost")
        self.device = device


class DeadlineExceededError(ExecutionError):
    """A per-task or end-to-end execution deadline expired."""


class QueueFullError(ExecutionError):
    """The serving admission queue is full and the request was rejected.

    Raised by :meth:`repro.serving.ServingFrontend.submit` when the
    frontend runs with ``admission="reject"`` (or a blocking submit's
    timeout expires) and the model's bounded queue has no room.  Clients
    should treat this as backpressure: shed load or retry later.
    """


class CircuitOpenError(ExecutionError):
    """A model lane's circuit breaker is open and rejected the request.

    Raised by :meth:`repro.serving.ServingFrontend.submit` when the
    lane's :class:`~repro.serving.breaker.CircuitBreaker` has tripped
    after persistent request failures.  The lane rejects immediately —
    no queueing, no worker time — until the breaker's recovery timeout
    admits half-open probe requests again.

    Attributes:
        model: the lane that rejected the request.
        retry_after_s: seconds until the breaker will admit a probe.
    """

    def __init__(self, model: str, retry_after_s: float):
        super().__init__(
            f"circuit breaker for model {model!r} is open; "
            f"retry in {retry_after_s:.3f}s"
        )
        self.model = model
        self.retry_after_s = retry_after_s


class LoadShedError(ExecutionError):
    """The request was shed at admission: its deadline is unmeetable.

    Raised by :meth:`repro.serving.ServingFrontend.submit` when the
    lane's adaptive shedder predicts — from observed queue delay and
    service time — that the request cannot complete within its deadline.
    Shedding at submit time is cheaper for everyone than admitting work
    that will expire in the queue.

    Attributes:
        model: the lane that shed the request.
        deadline_s: the request's deadline budget.
        predicted_s: the shedder's predicted admission-to-completion time.
    """

    def __init__(self, model: str, deadline_s: float, predicted_s: float):
        super().__init__(
            f"request to model {model!r} shed: predicted completion in "
            f"{predicted_s:.4f}s exceeds the {deadline_s:.4f}s deadline"
        )
        self.model = model
        self.deadline_s = deadline_s
        self.predicted_s = predicted_s


class MetricsError(ReproError):
    """Invalid metrics-registry usage: bad bucket boundaries, a name
    registered twice with different types, or malformed exposition text."""


class DeviceError(ReproError):
    """Invalid device specification or cost-model query."""


class InvariantViolation(ReproError):
    """A plan/schedule structural invariant does not hold.

    Raised by :mod:`repro.testing.invariants` when a partition, placement,
    plan, or simulated execution breaks the properties the scheduler is
    supposed to guarantee (paper §IV-A/§IV-C/§IV-D).  Carries every
    violation found, not just the first.

    Attributes:
        violations: human-readable description of each broken invariant.
    """

    def __init__(self, violations: list[str]):
        self.violations = list(violations)
        head = violations[0] if violations else "unknown violation"
        extra = f" (+{len(violations) - 1} more)" if len(violations) > 1 else ""
        super().__init__(f"invariant violation: {head}{extra}")
