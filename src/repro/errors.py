"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch everything with a single ``except`` clause while still being able
to discriminate between IR construction problems, compilation failures, and
scheduling/runtime issues.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class IRError(ReproError):
    """Malformed IR: bad graph structure, unknown node ids, etc."""


class ShapeError(IRError):
    """Operator shape inference failed for the given input types."""


class TypeCheckError(IRError):
    """Dtype mismatch between operator inputs."""


class GraphValidationError(IRError):
    """A graph-level invariant (acyclicity, dangling edge, ...) is violated."""


class UnknownOpError(IRError):
    """An operator name is not present in the op registry."""


class CompilerError(ReproError):
    """A compiler pass or lowering step failed."""


class PartitionError(ReproError):
    """Graph partitioning produced or detected an invalid phase structure."""


class SchedulingError(ReproError):
    """Subgraph placement/scheduling failed or was given invalid input."""


class ProfilingError(ReproError):
    """The compiler-aware profiler could not profile a subgraph."""


class ExecutionError(ReproError):
    """Runtime execution of a compiled module failed."""


class DeviceError(ReproError):
    """Invalid device specification or cost-model query."""
