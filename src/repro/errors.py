"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch everything with a single ``except`` clause while still being able
to discriminate between IR construction problems, compilation failures, and
scheduling/runtime issues.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class IRError(ReproError):
    """Malformed IR: bad graph structure, unknown node ids, etc."""


class ShapeError(IRError):
    """Operator shape inference failed for the given input types."""


class TypeCheckError(IRError):
    """Dtype mismatch between operator inputs."""


class GraphValidationError(IRError):
    """A graph-level invariant (acyclicity, dangling edge, ...) is violated."""


class UnknownOpError(IRError):
    """An operator name is not present in the op registry."""


class CompilerError(ReproError):
    """A compiler pass or lowering step failed."""


class PartitionError(ReproError):
    """Graph partitioning produced or detected an invalid phase structure."""


class SchedulingError(ReproError):
    """Subgraph placement/scheduling failed or was given invalid input."""


class ProfilingError(ReproError):
    """The compiler-aware profiler could not profile a subgraph."""


class ExecutionError(ReproError):
    """Runtime execution of a compiled module failed."""


class TransientKernelError(ExecutionError):
    """A kernel failed in a way that is expected to succeed on retry.

    Raised by the fault injector (and retryable by the resilient
    executor); a real deployment would map driver-level soft errors —
    ECC hiccups, launch timeouts, spurious OOM — onto this class.
    """


class TransferError(ExecutionError):
    """A host↔device transfer failed or delivered corrupted data."""


class DeviceLostError(ExecutionError):
    """A device disappeared permanently (fell off the bus, driver reset).

    Unlike :class:`TransientKernelError` this is *not* retryable on the
    same device; the resilient executor reacts by failing over the dead
    device's remaining work to the survivor.

    Attributes:
        device: placement name (``"cpu"``/``"gpu"``) of the lost device.
    """

    def __init__(self, device: str, message: str | None = None):
        super().__init__(message or f"device {device!r} was lost")
        self.device = device


class DeadlineExceededError(ExecutionError):
    """A per-task or end-to-end execution deadline expired."""


class QueueFullError(ExecutionError):
    """The serving admission queue is full and the request was rejected.

    Raised by :meth:`repro.serving.ServingFrontend.submit` when the
    frontend runs with ``admission="reject"`` (or a blocking submit's
    timeout expires) and the model's bounded queue has no room.  Clients
    should treat this as backpressure: shed load or retry later.
    """


class MetricsError(ReproError):
    """Invalid metrics-registry usage: bad bucket boundaries, a name
    registered twice with different types, or malformed exposition text."""


class DeviceError(ReproError):
    """Invalid device specification or cost-model query."""


class InvariantViolation(ReproError):
    """A plan/schedule structural invariant does not hold.

    Raised by :mod:`repro.testing.invariants` when a partition, placement,
    plan, or simulated execution breaks the properties the scheduler is
    supposed to guarantee (paper §IV-A/§IV-C/§IV-D).  Carries every
    violation found, not just the first.

    Attributes:
        violations: human-readable description of each broken invariant.
    """

    def __init__(self, violations: list[str]):
        self.violations = list(violations)
        head = violations[0] if violations else "unknown violation"
        extra = f" (+{len(violations) - 1} more)" if len(violations) > 1 else ""
        super().__init__(f"invariant violation: {head}{extra}")
