"""Seeded random computation-graph generation (the fuzzer's front end).

This generalizes the ad-hoc Hypothesis strategy the property tests started
with into library code: a deterministic, seed-driven generator over the
whole operator surface the scheduler sees — elementwise chains, binary
joins, dense/matmul layers, reductions, concat/split fan-out, and
recurrent layers — with configurable size and shape distributions.

Everything is driven by a ``numpy.random.Generator``, so the same seed
reproduces the same graph in the CLI fuzzer, in a pytest regression, and
inside a Hypothesis strategy (``tests/strategies.py`` delegates here).

Structure of a generated graph: a *frontier* of live ``(batch, width)``
tensors grows op by op.  Each step picks an op family by configured
weight; families that produce other ranks (reductions to ``(batch, 1)``,
concat to ``(batch, 2*width)``, recurrent over ``(batch, seq_len,
width)``) immediately route back into the 2-D frontier, so every frontier
entry remains a valid operand for every family and generation can never
dead-end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

import numpy as np

from repro.errors import IRError
from repro.ir.builder import GraphBuilder, Var
from repro.ir.graph import Graph

__all__ = [
    "GeneratorConfig",
    "FuzzCase",
    "generate_graph",
    "generate_cases",
    "case_rng",
]

_UNARY = ("relu", "tanh", "sigmoid", "negative", "abs", "identity", "exp")
_BINARY = ("add", "subtract", "multiply", "maximum")
_REDUCE = ("reduce_sum", "reduce_mean", "reduce_max", "reduce_min")
_SHAPE_PRESERVING_REDUCE = ("softmax", "log_softmax")
_RECURRENT = (("lstm", 4), ("gru", 3))

#: Default op-family mix.  Weights are relative; set one to 0.0 to disable
#: a family (e.g. ``recurrent=0`` for graphs the nested partitioner dislikes).
DEFAULT_FAMILIES: Mapping[str, float] = {
    "unary": 4.0,
    "binary": 3.0,
    "dense": 2.0,
    "matmul": 1.0,
    "reduction": 1.5,
    "concat_dense": 1.0,
    "split": 1.0,
    "recurrent": 1.0,
}


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the random-graph distribution.

    Attributes:
        min_ops / max_ops: target operator count range (a family may emit
            up to three ops, so a graph can overshoot ``max_ops`` by two).
        max_inputs: placeholder inputs drawn from ``[1, max_inputs]``.
        batch_choices / width_choices: per-graph tensor sizes are drawn
            uniformly from these, so one campaign covers several shapes.
        seq_len_choices: sequence lengths for recurrent-family inputs.
        max_outputs: number of declared outputs drawn from ``[1, ...]``.
        families: relative weight of each op family (see
            :data:`DEFAULT_FAMILIES`); unknown names raise at draw time.
    """

    min_ops: int = 1
    max_ops: int = 24
    max_inputs: int = 3
    batch_choices: tuple[int, ...] = (1, 2)
    width_choices: tuple[int, ...] = (3, 4, 6)
    seq_len_choices: tuple[int, ...] = (2, 3)
    max_outputs: int = 2
    families: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_FAMILIES)
    )

    def __post_init__(self) -> None:
        if self.min_ops < 1 or self.max_ops < self.min_ops:
            raise IRError(
                f"invalid op range [{self.min_ops}, {self.max_ops}]"
            )
        unknown = set(self.families) - set(DEFAULT_FAMILIES)
        if unknown:
            raise IRError(f"unknown op families: {sorted(unknown)}")
        if not any(w > 0 for w in self.families.values()):
            raise IRError("at least one op family must have positive weight")


@dataclass(frozen=True)
class FuzzCase:
    """One generated case: its position in the campaign and its graph."""

    campaign_seed: int
    index: int
    graph: Graph


def _as_rng(seed: int | np.random.Generator) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def case_rng(campaign_seed: int, index: int) -> np.random.Generator:
    """The generator that produced case ``index`` of a campaign.

    Derived from ``SeedSequence([campaign_seed, index])``, so any single
    case can be regenerated without replaying the cases before it.
    """
    return np.random.default_rng(
        np.random.SeedSequence([int(campaign_seed), int(index)])
    )


def _pick(rng: np.random.Generator, items):
    return items[int(rng.integers(len(items)))]


def _weighted_family(rng: np.random.Generator, families: Mapping[str, float]) -> str:
    names = sorted(n for n, w in families.items() if w > 0)
    weights = np.asarray([float(families[n]) for n in names])
    probs = weights / weights.sum()
    return names[int(rng.choice(len(names), p=probs))]


def generate_graph(
    seed: int | np.random.Generator,
    config: GeneratorConfig | None = None,
    name: str = "fuzz",
) -> Graph:
    """Generate one random valid graph, deterministically from ``seed``."""
    rng = _as_rng(seed)
    cfg = config or GeneratorConfig()

    batch = _pick(rng, cfg.batch_choices)
    width = _pick(rng, cfg.width_choices)
    seq_len = _pick(rng, cfg.seq_len_choices)

    b = GraphBuilder(name)
    n_inputs = int(rng.integers(1, cfg.max_inputs + 1))
    frontier: list[Var] = [
        b.input(f"in{i}", (batch, width)) for i in range(n_inputs)
    ]
    op_vars: list[Var] = []

    consumed: set[str] = set()

    def emit(var: Var) -> Var:
        frontier.append(var)
        op_vars.append(var)
        return var

    def pick_operand(rng_) -> Var:
        var = _pick(rng_, frontier)
        consumed.add(var.id)
        return var

    n_ops = int(rng.integers(cfg.min_ops, cfg.max_ops + 1))
    n_seq_inputs = 0
    while len(op_vars) < n_ops:
        family = _weighted_family(rng, cfg.families)
        if family == "unary":
            emit(b.op(_pick(rng, _UNARY), pick_operand(rng)))
        elif family == "binary":
            emit(
                b.op(
                    _pick(rng, _BINARY),
                    pick_operand(rng),
                    pick_operand(rng),
                )
            )
        elif family == "dense":
            w = b.const((width, width))
            emit(b.op("dense", pick_operand(rng), w))
        elif family == "matmul":
            w = b.const((width, width))
            emit(b.op("matmul", pick_operand(rng), w))
        elif family == "reduction":
            if rng.random() < 0.5:
                emit(
                    b.op(
                        _pick(rng, _SHAPE_PRESERVING_REDUCE),
                        pick_operand(rng),
                        axis=1,
                    )
                )
            else:
                # Reduce to (batch, 1), then broadcast-combine straight
                # back into the (batch, width) frontier.
                red = b.op(
                    _pick(rng, _REDUCE),
                    pick_operand(rng),
                    axis=1,
                    keepdims=True,
                )
                emit(b.op(_pick(rng, _BINARY), pick_operand(rng), red))
        elif family == "concat_dense":
            cat = b.op(
                "concat", pick_operand(rng), pick_operand(rng), axis=1
            )
            w = b.const((width, 2 * width))
            emit(b.op("dense", cat, w))
        elif family == "split":
            # Concat two tensors then slice the halves back apart: real
            # fan-out where two consumers read one producer.
            cat = b.op(
                "concat", pick_operand(rng), pick_operand(rng), axis=1
            )
            emit(
                b.op(
                    "strided_slice",
                    cat,
                    begin=(0, 0),
                    end=(batch, width),
                )
            )
            emit(
                b.op(
                    "strided_slice",
                    cat,
                    begin=(0, width),
                    end=(batch, 2 * width),
                )
            )
        elif family == "recurrent":
            op_name, gates = _pick(rng, _RECURRENT)
            seq = b.input(f"seq{n_seq_inputs}", (batch, seq_len, width))
            n_seq_inputs += 1
            w_ih = b.const((gates * width, width))
            w_hh = b.const((gates * width, width))
            bias = b.const((gates * width,))
            emit(
                b.op(
                    op_name,
                    seq,
                    w_ih,
                    w_hh,
                    bias,
                    hidden_size=width,
                    return_sequences=False,
                )
            )
        else:  # pragma: no cover - guarded by GeneratorConfig validation
            raise IRError(f"unknown op family {family!r}")

    # Declare every unconsumed sink as an output so the whole generated
    # structure stays live; when there are more sinks than max_outputs,
    # fold the oldest ones together (all sinks share the frontier shape)
    # so nothing gets pruned away.
    sinks = [v for v in op_vars if v.id not in consumed]
    n_outputs = int(rng.integers(1, cfg.max_outputs + 1))
    while len(sinks) > n_outputs:
        a = sinks.pop(0)
        c = sinks.pop(0)
        sinks.insert(0, b.op("add", a, c))
    return b.build(*sinks)


def generate_cases(
    campaign_seed: int,
    count: int,
    config: GeneratorConfig | None = None,
) -> Iterator[FuzzCase]:
    """Yield ``count`` independent cases of a seeded campaign."""
    for index in range(count):
        graph = generate_graph(
            case_rng(campaign_seed, index),
            config,
            name=f"fuzz_s{campaign_seed}_i{index}",
        )
        yield FuzzCase(campaign_seed=campaign_seed, index=index, graph=graph)
