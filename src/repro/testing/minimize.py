"""Greedy graph minimization (delta debugging for fuzz failures).

Given a graph that makes some predicate fail — usually "the differential
oracle found a divergence or invariant violation" — shrink it to a small
repro while the predicate keeps failing.  Two reduction moves, applied to
a fixpoint:

* **drop an output**: remove one declared output and prune everything
  that only it kept alive (cuts whole branches at once);
* **bypass an operator**: rewire every consumer of an op node to read one
  of the op's own inputs (or any model input) of the identical tensor
  type, then prune.  Type-identical substitution keeps the graph valid by
  construction, so every candidate is a well-formed model the oracle can
  actually run.

The search is greedy first-improvement, restarted after every accepted
reduction, and bounded by a predicate-evaluation budget so pathological
predicates cannot loop forever.  Minimization is deterministic: moves are
tried in a fixed order derived from the (deterministic) topological
order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import IRError
from repro.ir.graph import Graph

__all__ = ["MinimizationResult", "minimize_graph"]


@dataclass
class MinimizationResult:
    """Outcome of a minimization run.

    Attributes:
        graph: the smallest failing graph found.
        original_ops / minimized_ops: live operator counts before/after.
        evaluations: how many times the predicate was invoked.
    """

    graph: Graph
    original_ops: int
    minimized_ops: int
    evaluations: int

    @property
    def removed_ops(self) -> int:
        return self.original_ops - self.minimized_ops


def _bypass(graph: Graph, victim: str, replacement: str) -> Graph | None:
    """Rewire all readers of ``victim`` to ``replacement`` and prune.

    Returns ``None`` when the rewrite is not applicable (would leave the
    graph without any live operator, or fails re-validation).
    """
    nodes = []
    for node in graph.nodes.values():
        if node.id == victim:
            continue
        if victim in node.inputs:
            node = node.with_inputs(
                tuple(replacement if i == victim else i for i in node.inputs)
            )
        nodes.append(node)
    outputs = tuple(
        replacement if o == victim else o for o in graph.outputs
    )
    try:
        cand = Graph(graph.name, nodes, outputs).pruned()
    except IRError:
        return None
    if not cand.op_nodes():
        return None
    return cand


def minimize_graph(
    graph: Graph,
    predicate: Callable[[Graph], bool],
    max_evaluations: int = 400,
) -> MinimizationResult:
    """Shrink ``graph`` while ``predicate`` (the failure) keeps holding.

    Args:
        graph: a graph for which ``predicate(graph)`` is ``True``.
        predicate: returns ``True`` when a candidate still reproduces the
            failure.  It should be resilient to odd-but-valid graphs; any
            exception it raises propagates.
        max_evaluations: hard budget on predicate calls.

    Raises:
        IRError: if the initial graph does not satisfy the predicate —
            minimizing a non-failure would "shrink" it to noise.
    """
    evaluations = 0

    def holds(candidate: Graph) -> bool:
        nonlocal evaluations
        evaluations += 1
        return bool(predicate(candidate))

    if not holds(graph):
        raise IRError(
            "minimize_graph: the initial graph does not satisfy the predicate"
        )
    current = graph.pruned()
    original_ops = len(current.op_nodes())

    improved = True
    while improved and evaluations < max_evaluations:
        improved = False

        # Move 1: drop one declared output (and whatever dies with it).
        if len(current.outputs) > 1:
            for out in current.outputs:
                remaining = [o for o in current.outputs if o != out]
                cand = current.with_outputs(remaining).pruned()
                if evaluations >= max_evaluations:
                    break
                if holds(cand):
                    current = cand
                    improved = True
                    break
        if improved:
            continue

        # Move 2: bypass one operator with a type-identical value.  Later
        # (deeper) ops first: removing them early keeps upstream context
        # available for subsequent bypasses.
        model_inputs = [n for n in current.input_nodes()]
        for node in reversed(current.op_nodes()):
            candidates: list[str] = []
            for src in node.inputs:
                if current.node(src).ty == node.ty and src not in candidates:
                    candidates.append(src)
            for inp in model_inputs:
                if inp.ty == node.ty and inp.id not in candidates:
                    candidates.append(inp.id)
            for replacement in candidates:
                cand = _bypass(current, node.id, replacement)
                if cand is None or evaluations >= max_evaluations:
                    continue
                if holds(cand):
                    current = cand
                    improved = True
                    break
            if improved:
                break

    return MinimizationResult(
        graph=current,
        original_ops=original_ops,
        minimized_ops=len(current.op_nodes()),
        evaluations=evaluations,
    )
