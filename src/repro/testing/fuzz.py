"""Fuzz campaign driver: generate → cross-check → minimize → archive.

One campaign is fully determined by ``(campaign_seed, count, config)``:
case *i* is generated from ``SeedSequence([campaign_seed, i])``, run
through the differential oracle (:func:`repro.testing.oracle.run_differential`),
and — on failure — shrunk by the minimizer and written out as a JSON
artifact carrying the seed, the failure messages, and both the original
and minimized serialized graphs.  ``python -m repro fuzz`` is a thin CLI
wrapper around :func:`run_campaign`; the CI smoke job and the pytest
regression suite call the same entry points, so a failure seen anywhere
reproduces everywhere.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.devices.machine import Machine
from repro.ir import serialize
from repro.ir.graph import Graph
from repro.testing.generators import FuzzCase, GeneratorConfig, generate_cases
from repro.testing.minimize import MinimizationResult, minimize_graph
from repro.testing.oracle import DifferentialReport, run_differential

__all__ = ["FuzzFailure", "FuzzReport", "run_campaign", "replay_case", "load_artifact"]


@dataclass
class FuzzFailure:
    """One failing fuzz case, with its minimized repro and artifact."""

    campaign_seed: int
    index: int
    problems: list[str]
    graph: Graph
    minimized: Graph | None = None
    minimized_problems: list[str] = field(default_factory=list)
    artifact_path: Path | None = None

    def describe(self) -> str:
        ops = len(self.graph.pruned().op_nodes())
        lines = [
            f"case seed={self.campaign_seed} index={self.index} ({ops} ops):"
        ]
        lines += [f"  {p}" for p in self.problems]
        if self.minimized is not None:
            lines.append(
                f"  minimized to {len(self.minimized.op_nodes())} ops"
                + (f", artifact: {self.artifact_path}" if self.artifact_path else "")
            )
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """Summary of one fuzz campaign."""

    campaign_seed: int
    requested: int
    cases_run: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        verdict = "OK" if self.ok else f"{len(self.failures)} FAILURES"
        return (
            f"fuzz campaign seed={self.campaign_seed}: {self.cases_run}/"
            f"{self.requested} cases in {self.elapsed_s:.1f}s — {verdict}"
        )


def _write_artifact(
    directory: Path, failure: FuzzFailure
) -> Path:
    """Serialize a failure (seed + graphs) so it can be replayed anywhere."""
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / (
        f"repro_seed{failure.campaign_seed}_case{failure.index}.json"
    )
    payload = {
        "campaign_seed": failure.campaign_seed,
        "index": failure.index,
        "problems": failure.problems,
        "graph": serialize.graph_to_dict(failure.graph),
    }
    if failure.minimized is not None:
        payload["minimized_graph"] = serialize.graph_to_dict(failure.minimized)
        payload["minimized_problems"] = failure.minimized_problems
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_artifact(path: str | Path) -> tuple[Graph, Graph | None]:
    """Load (original, minimized-or-None) graphs from a repro artifact."""
    payload = json.loads(Path(path).read_text())
    graph = serialize.graph_from_dict(payload["graph"])
    minimized = None
    if "minimized_graph" in payload:
        minimized = serialize.graph_from_dict(payload["minimized_graph"])
    return graph, minimized


def replay_case(
    campaign_seed: int,
    index: int,
    config: GeneratorConfig | None = None,
    machine: Machine | None = None,
    backend: str = "numpy",
) -> DifferentialReport:
    """Re-run one case of a campaign exactly as the fuzzer ran it."""
    from repro.testing.generators import case_rng, generate_graph

    graph = generate_graph(
        case_rng(campaign_seed, index),
        config,
        name=f"fuzz_s{campaign_seed}_i{index}",
    )
    return run_differential(graph, machine=machine, backend=backend)


def run_campaign(
    campaign_seed: int,
    count: int,
    config: GeneratorConfig | None = None,
    machine: Machine | None = None,
    minimize: bool = True,
    artifact_dir: str | Path | None = None,
    time_budget_s: float | None = None,
    progress: Callable[[FuzzCase, DifferentialReport], None] | None = None,
    backend: str = "numpy",
) -> FuzzReport:
    """Run a seeded fuzz campaign through the differential oracle.

    Args:
        campaign_seed / count: campaign identity; case ``i`` depends only
            on ``(campaign_seed, i)``.
        config: graph-distribution knobs (defaults are CI-sized).
        machine: simulated hardware for all executors (noiseless default).
        minimize: shrink failing graphs to a small repro.
        artifact_dir: where to write JSON repro artifacts for failures.
        time_budget_s: stop starting new cases once this much wall time
            has elapsed (the in-flight case always completes).
        progress: callback invoked after every case with its report.
        backend: kernel backend for every compiled oracle arm
            (``--backend native`` fuzzes the C renderer + .so cache under
            the two-class ULP comparison policy).
    """
    report = FuzzReport(campaign_seed=campaign_seed, requested=count)
    t0 = time.monotonic()
    for case in generate_cases(campaign_seed, count, config):
        if time_budget_s is not None and time.monotonic() - t0 > time_budget_s:
            break
        diff = run_differential(case.graph, machine=machine, backend=backend)
        report.cases_run += 1
        if progress is not None:
            progress(case, diff)
        if diff.ok:
            continue

        failure = FuzzFailure(
            campaign_seed=case.campaign_seed,
            index=case.index,
            problems=diff.problems,
            graph=case.graph,
        )
        if minimize:
            result: MinimizationResult = minimize_graph(
                case.graph,
                lambda g: not run_differential(
                    g, machine=machine, backend=backend
                ).ok,
            )
            failure.minimized = result.graph
            failure.minimized_problems = run_differential(
                result.graph, machine=machine, backend=backend
            ).problems
        if artifact_dir is not None:
            failure.artifact_path = _write_artifact(Path(artifact_dir), failure)
        report.failures.append(failure)
    report.elapsed_s = time.monotonic() - t0
    return report
