"""Differential multi-executor oracle.

DUET's §IV-D transparency claim — scheduling must never change what a
model computes — is checked here by running one graph through every live
execution path and demanding exact agreement:

* the :mod:`repro.ir.interpreter` (semantic ground truth);
* the compiled single-device runtime, on CPU and on GPU;
* the discrete-event simulator executing the scheduled heterogeneous
  plan's kernels numerically (its timeline is additionally checked
  against the execution invariants, and its predicted completion order
  must linearize the task DAG) — under both the lazy and the
  double-buffered ``overlap=True`` transfer disciplines, which must be
  bit-identical (overlap changes the virtual clock, never the data);
* the :class:`~repro.runtime.threaded.ThreadedExecutor` (real threads),
  with and without the prefetching transfer worker;
* the :class:`~repro.runtime.resilient.ResilientExecutor` with no faults
  injected (the recovery machinery must be a no-op on healthy runs);
* the unified :class:`~repro.runtime.core.DispatchKernel` driven
  directly with the inline worker strategy and an arena — the
  configuration :class:`~repro.runtime.session.EngineSession` serves
  repeated requests with;
* the same kernel driven *preemptibly*
  (:meth:`~repro.runtime.core.DispatchKernel.run_preemptible`), forced
  to suspend at **every** plan phase boundary with an interloping
  full dispatch clobbering the shared arena between segments — the
  serving frontend's phase-boundary preemption path, which must resume
  from its checkpointed frontier bit-identically.

Outputs are compared element-exactly (same shape, same dtype, ``==``
everywhere) — all paths run the same NumPy kernels in dependency order,
so there is no tolerance to hide behind.  Plans are exercised both under
the scheduler's own placement and under a forced alternating placement
that guarantees cross-device edges, so the transfer paths are always
covered even when the scheduler would keep a small graph on one device.

Two additional arms run the graph through the **native C backend**
(``native`` directly, ``native:threaded`` under real worker threads).
Their comparison follows the two-class policy of
:mod:`repro.compiler.native.policy`: when every compiled kernel is
order-preserving the comparison stays bit-exact; when any kernel
reassociates (GEMM/reductions) or calls libm transcendentals, outputs
must agree within the graph's summed per-op ULP budget.  When no system
C compiler exists the arms are *skipped with a visible marker* (the
outcome's ``skipped`` flag, surfaced in the report summary) rather than
silently passing.  ``run_differential(backend="native")`` additionally
swaps the native compiler into every arm — single-device, simulator,
threaded, serving core — so the whole scheduling pipeline is exercised
over ctypes-dispatched kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from repro.compiler.pipeline import Compiler
from repro.core.partition import partition_graph
from repro.core.phases import PhasedPartition
from repro.core.placement import build_hetero_plan
from repro.core.profiler import CompilerAwareProfiler, device_target
from repro.core.scheduler import GreedyCorrectionScheduler
from repro.devices.machine import Machine, default_machine
from repro.errors import ReproError
from repro.ir.graph import Graph
from repro.ir.interpreter import make_inputs, run_graph
from repro.runtime.core import DispatchKernel, InlineWorkers, PhaseCheckpoint
from repro.runtime.memory import TensorArena
from repro.runtime.resilient import ResilientExecutor
from repro.runtime.simulator import simulate
from repro.runtime.single import run_single_device
from repro.runtime.threaded import ThreadedExecutor
from repro.testing.invariants import (
    check_execution,
    check_placement,
    check_plan,
    check_task_order,
    validate_schedule,
)

__all__ = ["ExecutorOutcome", "DifferentialReport", "run_differential"]

#: The execution paths the oracle cross-checks (plus the interpreter).
EXECUTOR_NAMES = (
    "single:cpu",
    "single:gpu",
    "native",
    "native:threaded",
    "simulator",
    "simulator:overlap",
    "threaded",
    "threaded:overlap",
    "resilient",
    "core",
    "preempt",
)

PlacementTransform = Callable[[dict[str, str], PhasedPartition], dict[str, str]]


@dataclass
class ExecutorOutcome:
    """What one execution path produced for the fuzzed graph."""

    name: str
    outputs: list[np.ndarray] | None = None
    task_order: list[str] | None = None
    error: str | None = None
    #: Arm could not run in this environment (e.g. native arms without a
    #: C compiler).  Skips are surfaced in the report summary, never
    #: silently counted as agreement.
    skipped: bool = False


@dataclass
class DifferentialReport:
    """Outcome of one differential run.

    ``divergences`` are output mismatches between an executor and the
    interpreter; ``violations`` are broken structural invariants.  A
    graph *conforms* when both lists are empty.
    """

    graph: Graph
    placement: dict[str, str] = field(default_factory=dict)
    divergences: list[str] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)
    outcomes: dict[str, ExecutorOutcome] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.divergences and not self.violations

    @property
    def problems(self) -> list[str]:
        """All failures, divergences first."""
        return list(self.divergences) + list(self.violations)

    @property
    def skipped_arms(self) -> list[str]:
        """Arms that could not run in this environment."""
        return [n for n, o in self.outcomes.items() if o.skipped]

    def summary(self) -> str:
        skipped = self.skipped_arms
        marker = f" [SKIPPED: {', '.join(skipped)} — no C compiler]" if skipped else ""
        if self.ok:
            ran = len(self.outcomes) - len(skipped)
            return f"{self.graph.name}: OK ({ran} execution paths agree){marker}"
        lines = [f"{self.graph.name}: FAILED{marker}"]
        lines += [f"  divergence: {d}" for d in self.divergences]
        lines += [f"  invariant:  {v}" for v in self.violations]
        return "\n".join(lines)


def _compare(name: str, got, ref, ulp_budget: float = 0.0) -> list[str]:
    """Output comparison against the interpreter reference.

    Exact by default.  A positive ``ulp_budget`` (native arms whose
    modules contain reassociated/transcendental kernels) admits
    elementwise drift up to the budget; shape and dtype always match
    exactly, and non-finite values must agree exactly.
    """
    if got is None:
        return [f"{name}: produced no outputs"]
    if len(got) != len(ref):
        return [f"{name}: {len(got)} outputs, interpreter produced {len(ref)}"]
    msgs = []
    for i, (a, b) in enumerate(zip(got, ref)):
        a, b = np.asarray(a), np.asarray(b)
        if a.shape != b.shape:
            msgs.append(
                f"{name}: output {i} shape {a.shape} != reference {b.shape}"
            )
        elif a.dtype != b.dtype:
            msgs.append(
                f"{name}: output {i} dtype {a.dtype} != reference {b.dtype}"
            )
        elif not np.array_equal(a, b):
            if ulp_budget > 0.0:
                from repro.compiler.native.policy import max_ulp_diff

                ulp = max_ulp_diff(a, b)
                if ulp <= ulp_budget:
                    continue
                msgs.append(
                    f"{name}: output {i} drifts {ulp:.0f} ULP from the "
                    f"interpreter (budget {ulp_budget:.0f})"
                )
                continue
            with np.errstate(invalid="ignore"):
                delta = float(np.max(np.abs(a.astype(np.float64) - b)))
            msgs.append(
                f"{name}: output {i} diverges from the interpreter "
                f"(max abs diff {delta:.3e})"
            )
    return msgs


def alternating_placement(
    partition: PhasedPartition, devices: tuple[str, ...] = ("cpu", "gpu")
) -> dict[str, str]:
    """Device round-robin over subgraphs: guarantees cross-device edges
    (and, on a mesh, touches every device once enough subgraphs exist)."""
    return {
        sg.id: devices[i % len(devices)]
        for i, sg in enumerate(partition.subgraphs)
    }


def _module_budget(module) -> float:
    """ULP tolerance for comparing one compiled module's outputs to the
    interpreter: zero (exact) when every kernel is order-preserving,
    else the module graph's summed per-op budget."""
    if all(k.exact for k in module.kernels):
        return 0.0
    from repro.compiler.native.policy import graph_ulp_budget

    return graph_ulp_budget(module.graph)


def _plan_budget(plan) -> float:
    """Summed ULP tolerance over a heterogeneous plan's task modules."""
    return sum(_module_budget(task.module) for task in plan.tasks)


def run_differential(
    graph: Graph,
    machine: Machine | None = None,
    input_seed: int = 0,
    param_seed: int = 0,
    placement_transform: PlacementTransform | None = None,
    cross_device: bool = True,
    single_device: bool = True,
    backend: str = "numpy",
) -> DifferentialReport:
    """Run ``graph`` through every execution path and cross-check.

    Args:
        graph: the model under test.
        machine: simulated hardware; a noiseless default machine when
            omitted (timings deterministic, numerics unaffected either way).
        input_seed / param_seed: seeds for the shared inputs/parameters.
        placement_transform: optional mutation applied to the scheduled
            placement before plan construction — the hook the
            mutation-detection tests use to inject scheduler bugs.  The
            invariant validator must catch anything illegal it produces.
        cross_device: also exercise a forced alternating placement so
            transfer paths are covered even when the scheduler keeps the
            graph on one device.
        single_device: include the compiled single-device runtime arms.
        backend: kernel backend for every compiled arm (``"numpy"`` or
            ``"native"``).  With ``"native"`` comparisons follow the
            two-class ULP policy; inter-executor checks stay bit-exact
            (the same compiled kernels are deterministic everywhere).
    """
    machine = machine or default_machine(noisy=False)
    devices = machine.device_names
    host = machine.host
    report = DifferentialReport(graph=graph)

    feeds = make_inputs(graph, seed=input_seed)
    ref = run_graph(graph, feeds, seed=param_seed)

    def attempt(name: str, fn) -> ExecutorOutcome:
        outcome = ExecutorOutcome(name=name)
        try:
            fn(outcome)
        except ReproError as exc:
            outcome.error = f"{type(exc).__name__}: {exc}"
            report.divergences.append(f"{name}: raised {outcome.error}")
        report.outcomes[name] = outcome
        return outcome

    compiler = Compiler(backend=backend)
    if single_device:
        for dev in machine.devices:

            def run_single(outcome, device=dev.name, target=device_target(dev)):
                module = compiler.compile(graph, target)
                result = run_single_device(
                    module, device, machine, inputs=feeds
                )
                outcome.outputs = result.outputs
                report.divergences += _compare(
                    outcome.name, result.outputs, ref, _module_budget(module)
                )

            attempt(f"single:{dev.name}", run_single)

    # Dedicated native-backend arms: direct module execution, and the
    # same module under real worker threads (ctypes drops the GIL inside
    # kernels, so this exercises genuinely concurrent native dispatch).
    # Visibly skipped — never silently green — without a C compiler.
    from repro.compiler.native import native_available

    native_compiler = (
        compiler if backend == "native" else Compiler(backend="native")
    )
    host_dev = machine.devices[0]

    def run_native(outcome):
        if not native_available():
            outcome.skipped = True
            return
        module = native_compiler.compile(graph, device_target(host_dev))
        outputs = module.run(feeds)
        outcome.outputs = outputs
        report.divergences += _compare(
            outcome.name, outputs, ref, _module_budget(module)
        )

    def run_native_threaded(outcome):
        if not native_available():
            outcome.skipped = True
            return
        from repro.runtime.single import single_device_plan

        module = native_compiler.compile(graph, device_target(host_dev))
        plan = single_device_plan(module, host_dev.name)
        result = ThreadedExecutor(plan).run(feeds)
        outcome.outputs = result.outputs
        report.divergences += _compare(
            outcome.name, result.outputs, ref, _module_budget(module)
        )
        # Same kernels as the direct native arm: bit-identical, always.
        direct = report.outcomes.get("native")
        if direct is not None and direct.outputs is not None:
            if result.outputs is None or any(
                not np.array_equal(a, b)
                for a, b in zip(direct.outputs, result.outputs)
            ):
                report.divergences.append(
                    f"{outcome.name}: threaded native execution is not "
                    "bit-identical to direct native execution"
                )

    attempt("native", run_native)
    attempt("native:threaded", run_native_threaded)

    # Partition, profile, schedule — the real pipeline under test.
    try:
        partition = partition_graph(graph)
        profiles = CompilerAwareProfiler(
            machine=machine, compiler=compiler
        ).profile_partition(partition)
        schedule = GreedyCorrectionScheduler(machine=machine).schedule(
            graph, partition, profiles
        )
    except ReproError as exc:
        report.violations.append(
            f"scheduling pipeline raised {type(exc).__name__}: {exc}"
        )
        return report

    placement = dict(schedule.placement)
    if placement_transform is not None:
        placement = placement_transform(placement, partition)
    report.placement = placement

    placement_violations = check_placement(partition, placement, devices=devices)
    if placement_violations:
        # The validator caught the (injected or real) scheduler bug before
        # plan construction could crash on it.
        report.violations += placement_violations
        return report

    arms: list[tuple[str, dict[str, str]]] = [("", placement)]
    alt = alternating_placement(partition, devices)
    if cross_device and alt != placement:
        arms.append(("@alt", alt))

    for suffix, arm_placement in arms:
        try:
            plan = build_hetero_plan(
                graph, partition, profiles, arm_placement, devices=devices
            )
        except ReproError as exc:
            report.violations.append(
                f"plan construction{suffix} raised {type(exc).__name__}: {exc}"
            )
            continue
        report.violations += validate_schedule(
            graph, partition, arm_placement, plan, devices=devices, host=host
        )
        plan_budget = _plan_budget(plan)

        def run_simulator(outcome, plan=plan, plan_budget=plan_budget):
            result = simulate(plan, machine, inputs=feeds)
            outcome.outputs = result.outputs
            # Predicted completion order = tasks sorted by virtual finish.
            outcome.task_order = [
                r.task_id
                for r in sorted(result.tasks, key=lambda r: (r.finish, r.start))
            ]
            report.divergences += _compare(
                outcome.name, result.outputs, ref, plan_budget
            )
            report.violations += check_execution(plan, result, host=host)
            report.violations += check_task_order(plan, outcome.task_order)

        def run_simulator_overlap(
            outcome, plan=plan, suffix=suffix, plan_budget=plan_budget
        ):
            result = simulate(plan, machine, inputs=feeds, overlap=True)
            outcome.outputs = result.outputs
            outcome.task_order = [
                r.task_id
                for r in sorted(result.tasks, key=lambda r: (r.finish, r.start))
            ]
            report.divergences += _compare(
                outcome.name, result.outputs, ref, plan_budget
            )
            report.violations += check_execution(plan, result, host=host)
            report.violations += check_task_order(plan, outcome.task_order)
            # Overlap reorders the virtual clock, never the data: outputs
            # must be bit-identical to the lazy simulation of the same plan.
            lazy = report.outcomes.get(f"simulator{suffix}")
            if lazy is not None and lazy.outputs is not None:
                if outcome.outputs is None or any(
                    not np.array_equal(a, b)
                    for a, b in zip(lazy.outputs, outcome.outputs)
                ):
                    report.divergences.append(
                        f"{outcome.name}: overlap-enabled execution is not "
                        "bit-identical to the lazy simulation"
                    )

        def run_threaded(outcome, plan=plan, overlap=False, plan_budget=plan_budget):
            result = ThreadedExecutor(plan, overlap=overlap).run(feeds)
            outcome.outputs = result.outputs
            outcome.task_order = result.task_order
            report.divergences += _compare(
                outcome.name, result.outputs, ref, plan_budget
            )
            report.violations += check_task_order(plan, result.task_order)
            for tid, dev in result.task_worker.items():
                if plan.task(tid).device != dev:
                    report.violations.append(
                        f"{outcome.name}: task {tid!r} ran on {dev!r}, "
                        f"planned {plan.task(tid).device!r}"
                    )

        def run_resilient(outcome, plan=plan, plan_budget=plan_budget):
            result = ResilientExecutor(plan).run(feeds)
            outcome.outputs = result.outputs
            outcome.task_order = result.task_order
            report.divergences += _compare(
                outcome.name, result.outputs, ref, plan_budget
            )
            report.violations += check_task_order(plan, result.task_order)
            if result.events:
                report.violations.append(
                    f"{outcome.name}: fault-free run logged "
                    f"{len(result.events)} recovery events"
                )

        def run_core(outcome, plan=plan, plan_budget=plan_budget):
            # Two arena-backed requests through one kernel: the session
            # configuration, plus a check that buffer reuse on the second
            # request does not perturb the numerics.
            kernel = DispatchKernel(
                plan, workers=InlineWorkers(), arena=TensorArena()
            )
            first = [np.copy(o) for o in kernel.run(feeds).outputs]
            result = kernel.run(feeds)
            outcome.outputs = result.outputs
            outcome.task_order = result.task_order
            report.divergences += _compare(
                outcome.name, result.outputs, ref, plan_budget
            )
            report.violations += check_task_order(plan, result.task_order)
            for a, b in zip(first, result.outputs):
                if not np.array_equal(a, b):
                    report.violations.append(
                        f"{outcome.name}: arena reuse changed outputs "
                        "between repeated runs"
                    )

        def run_preempt(outcome, plan=plan, plan_budget=plan_budget):
            # The serving frontend's preemption path: force a suspension
            # at every phase boundary, and run a full interloping dispatch
            # on the same kernel (same arena) while suspended — exactly
            # what a higher-priority request does to a preempted one.
            # The checkpointed frontier must survive the arena clobber.
            kernel = DispatchKernel(
                plan, workers=InlineWorkers(), arena=TensorArena()
            )
            hops = 0
            out = kernel.run_preemptible(feeds, should_preempt=lambda: True)
            while isinstance(out, PhaseCheckpoint):
                hops += 1
                kernel.run(feeds)  # interloper clobbers the arena
                out = kernel.run_preemptible(
                    should_preempt=lambda: True, checkpoint=out
                )
            outcome.outputs = out.outputs
            outcome.task_order = out.task_order
            report.divergences += _compare(
                outcome.name, out.outputs, ref, plan_budget
            )
            report.violations += check_task_order(plan, out.task_order)
            boundaries = sum(
                1
                for prev, cur in zip(plan.tasks, plan.tasks[1:])
                if cur.phase_index != prev.phase_index
            )
            if hops != boundaries:
                report.violations.append(
                    f"{outcome.name}: suspended {hops} times, plan has "
                    f"{boundaries} phase boundaries"
                )

        attempt(f"simulator{suffix}", run_simulator)
        attempt(f"simulator:overlap{suffix}", run_simulator_overlap)
        attempt(f"threaded{suffix}", run_threaded)
        attempt(
            f"threaded:overlap{suffix}",
            lambda outcome, plan=plan: run_threaded(
                outcome, plan=plan, overlap=True
            ),
        )
        attempt(f"resilient{suffix}", run_resilient)
        attempt(f"core{suffix}", run_core)
        attempt(f"preempt{suffix}", run_preempt)

    return report
