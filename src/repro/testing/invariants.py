"""Structural invariant checking for partitions, placements, plans, runs.

Every guarantee the paper's compiler-runtime contract makes is written
down here as a checkable predicate:

* **partition** (§IV-A): phases cover every live operator exactly once,
  sequential phases hold one chain subgraph, multi-path phases hold
  mutually independent subgraphs, and data only flows from earlier phases
  to later ones;
* **placement** (§IV-C): every subgraph placed exactly once on a real
  device — the property each greedy-correction swap must preserve;
* **plan** (§IV-D): task order is dependency-respecting, sources are
  fully wired to real producers, and the tasks' modules cover the model's
  operators exactly once;
* **execution**: per-device serialization, a matching PCIe transfer for
  every cross-device edge, transfer/compute causality, and a completion
  order that linearizes the task DAG.

All ``check_*`` functions return a list of human-readable violations
(empty = invariant holds) so callers can aggregate; the ``assert_*``
wrappers raise :class:`~repro.errors.InvariantViolation` carrying the
full list.  The checks are intentionally independent of the code that
*constructs* these objects — they re-derive everything from the graph —
so a scheduler bug cannot hide by breaking the checker the same way.

They are cheap enough to run always in tests and, under the engine's
debug flag (``DuetEngine(validate=True)`` or ``REPRO_VALIDATE=1``), on
every production scheduling decision.
"""

from __future__ import annotations

from collections import Counter
from typing import Mapping, Sequence

from repro.core.phases import PhasedPartition, PhaseType
from repro.errors import InvariantViolation
from repro.ir.graph import Graph
from repro.runtime.plan import HeteroPlan
from repro.runtime.simulator import ExecutionResult

__all__ = [
    "check_partition",
    "check_placement",
    "check_plan",
    "check_task_order",
    "check_execution",
    "validate_schedule",
    "assert_valid",
]

#: Default-machine device set, used when a caller does not say which
#: mesh the schedule was produced for.
_DEVICES = ("cpu", "gpu")
_HOST = "cpu"
_EPS = 1e-9


def _pair(a: str, b: str) -> tuple[str, str]:
    """Canonical key of the (undirected) link between two devices."""
    return (a, b) if a <= b else (b, a)


def assert_valid(violations: Sequence[str]) -> None:
    """Raise :class:`InvariantViolation` if any violation was collected."""
    if violations:
        raise InvariantViolation(list(violations))


# ----------------------------------------------------------------------
# partition invariants (§IV-A phase structure)
# ----------------------------------------------------------------------


def _op_edges_between(graph: Graph, members: frozenset[str]):
    """Op->op edges of ``graph`` with the producer inside ``members``."""
    for nid in members:
        for consumer in graph.consumers(nid):
            if graph.node(consumer).is_op:
                yield nid, consumer


def check_partition(graph: Graph, partition: PhasedPartition) -> list[str]:
    """Phase-structure legality of ``partition`` for (pruned) ``graph``."""
    violations: list[str] = []
    live = graph.pruned()
    expected = {n.id for n in live.op_nodes()}

    counts: Counter[str] = Counter()
    owner: dict[str, str] = {}
    phase_of: dict[str, int] = {}
    for phase in partition.phases:
        if phase.type is PhaseType.SEQUENTIAL and len(phase.subgraphs) != 1:
            violations.append(
                f"sequential phase {phase.index} holds "
                f"{len(phase.subgraphs)} subgraphs"
            )
        for sg in phase.subgraphs:
            for nid in sg.node_ids:
                counts[nid] += 1
                owner[nid] = sg.id
                phase_of[nid] = phase.index

    multi = [nid for nid, c in counts.items() if c > 1]
    if multi:
        violations.append(f"nodes assigned to several subgraphs: {sorted(multi)[:4]}")
    missing = expected - set(counts)
    if missing:
        violations.append(f"live operators not covered by any phase: {sorted(missing)[:4]}")
    extra = set(counts) - expected
    if extra:
        violations.append(f"phases contain dead/unknown operators: {sorted(extra)[:4]}")

    for phase in partition.phases:
        for sg in phase.subgraphs:
            members = sg.node_ids & expected
            if phase.type is PhaseType.SEQUENTIAL:
                # A sequential subgraph must be a chain in the op graph:
                # at most one internal predecessor/successor per member.
                out_deg = Counter()
                in_deg = Counter()
                for u, v in _op_edges_between(live, frozenset(members)):
                    if v in members:
                        out_deg[u] += 1
                        in_deg[v] += 1
                if any(d > 1 for d in out_deg.values()) or any(
                    d > 1 for d in in_deg.values()
                ):
                    violations.append(
                        f"sequential subgraph {sg.id!r} is not a chain"
                    )
            for u, v in _op_edges_between(live, frozenset(members)):
                if v not in phase_of:
                    continue  # dangling consumer already reported above
                if phase_of[v] < phase.index:
                    violations.append(
                        f"edge {u!r}->{v!r} flows backwards from phase "
                        f"{phase.index} to phase {phase_of[v]}"
                    )
                elif phase_of[v] == phase.index and owner[v] != sg.id:
                    violations.append(
                        f"multi-path phase {phase.index} subgraphs "
                        f"{sg.id!r} and {owner[v]!r} are not independent "
                        f"(edge {u!r}->{v!r})"
                    )
    return violations


# ----------------------------------------------------------------------
# placement invariants (§IV-C: what every correction swap must preserve)
# ----------------------------------------------------------------------


def check_placement(
    partition: PhasedPartition,
    placement: Mapping[str, str],
    devices: Sequence[str] | None = None,
) -> list[str]:
    """Every subgraph placed exactly once, on a real device.

    ``devices`` is the machine's device set; the default-machine pair
    when omitted.
    """
    violations: list[str] = []
    valid = tuple(devices) if devices is not None else _DEVICES
    ids = {sg.id for sg in partition.subgraphs}
    missing = ids - set(placement)
    if missing:
        violations.append(f"subgraphs never placed: {sorted(missing)}")
    extra = set(placement) - ids
    if extra:
        violations.append(f"placement names unknown subgraphs: {sorted(extra)}")
    for sid, dev in placement.items():
        if dev not in valid:
            violations.append(f"subgraph {sid!r} placed on invalid device {dev!r}")
    return violations


# ----------------------------------------------------------------------
# plan invariants (§IV-D executor input contract)
# ----------------------------------------------------------------------


def check_plan(
    plan: HeteroPlan,
    graph: Graph | None = None,
    partition: PhasedPartition | None = None,
    placement: Mapping[str, str] | None = None,
    devices: Sequence[str] | None = None,
) -> list[str]:
    """Static validity of an executable plan.

    With ``graph`` the operator coverage is verified; with ``partition``
    (and optionally ``placement``) the plan is cross-checked against the
    scheduling decision it supposedly implements.  ``devices`` is the
    machine's device set (default-machine pair when omitted).
    """
    violations: list[str] = []
    valid_devices = tuple(devices) if devices is not None else _DEVICES
    ids = [t.task_id for t in plan.tasks]
    for tid, n in Counter(ids).items():
        if n > 1:
            violations.append(f"task id {tid!r} appears {n} times")
    by_id = {t.task_id: t for t in plan.tasks}

    seen: set[str] = set()
    for task in plan.tasks:
        if task.device not in valid_devices:
            violations.append(
                f"task {task.task_id!r} pinned to invalid device {task.device!r}"
            )
        wired = set(task.sources)
        declared = set(task.module.input_ids)
        if wired != declared:
            violations.append(
                f"task {task.task_id!r} wiring mismatch: missing "
                f"{sorted(declared - wired)}, extra {sorted(wired - declared)}"
            )
        for input_id, src in task.sources.items():
            if src.kind == "task":
                if src.ref not in by_id:
                    violations.append(
                        f"task {task.task_id!r} reads unknown task {src.ref!r}"
                    )
                    continue
                if src.ref not in seen:
                    violations.append(
                        f"task {task.task_id!r} depends on {src.ref!r} which "
                        "does not precede it (plan order not topological)"
                    )
                producer = by_id[src.ref]
                if not 0 <= src.output_index < len(producer.module.output_ids):
                    violations.append(
                        f"task {task.task_id!r} reads output "
                        f"{src.output_index} of {src.ref!r} which has only "
                        f"{len(producer.module.output_ids)} outputs"
                    )
            elif graph is not None:
                if src.ref not in graph or not graph.node(src.ref).is_input:
                    violations.append(
                        f"task {task.task_id!r} external source {src.ref!r} "
                        "is not a model input"
                    )
        seen.add(task.task_id)

    for tid, idx in plan.outputs:
        if tid not in by_id:
            violations.append(f"plan output references unknown task {tid!r}")
        elif not 0 <= idx < len(by_id[tid].module.output_ids):
            violations.append(
                f"plan output ({tid!r}, {idx}) exceeds the task's outputs"
            )

    if graph is not None:
        # No operator may be computed twice (compiler passes may *remove*
        # ops — folding, CSE, DCE — so absence is checked via the
        # partition's boundary contract below, not op-by-op here).
        covered: Counter[str] = Counter()
        for task in plan.tasks:
            for node in task.module.graph.op_nodes():
                covered[node.id] += 1
        duplicated = [nid for nid, c in covered.items() if c > 1]
        if duplicated:
            violations.append(
                f"operators executed by several tasks: {sorted(duplicated)[:4]}"
            )
        # Every declared model output must be produced, in declaration
        # order, by the plan's outputs.
        live = graph.pruned()
        produced = [
            by_id[tid].module.output_ids[idx]
            for tid, idx in plan.outputs
            if tid in by_id and 0 <= idx < len(by_id[tid].module.output_ids)
        ]
        if tuple(produced) != tuple(live.outputs):
            violations.append(
                f"plan outputs compute {produced} but the model declares "
                f"{list(live.outputs)}"
            )

    if partition is not None:
        sg_by_id = {sg.id: sg for sg in partition.subgraphs}
        phase_of = {
            sg.id: phase.index
            for phase in partition.phases
            for sg in phase.subgraphs
        }
        for task in plan.tasks:
            sg = sg_by_id.get(task.task_id)
            if sg is None:
                violations.append(
                    f"task {task.task_id!r} matches no partition subgraph"
                )
                continue
            if task.phase_index != phase_of[task.task_id]:
                violations.append(
                    f"task {task.task_id!r} claims phase {task.phase_index} "
                    f"but the partition puts it in phase {phase_of[task.task_id]}"
                )
            if tuple(task.module.output_ids) != sg.boundary_outputs:
                violations.append(
                    f"task {task.task_id!r} exposes outputs "
                    f"{list(task.module.output_ids)} but its subgraph's "
                    f"boundary is {list(sg.boundary_outputs)}"
                )
        unrealized = set(sg_by_id) - {t.task_id for t in plan.tasks}
        if unrealized:
            violations.append(
                f"subgraphs without a plan task: {sorted(unrealized)}"
            )

    if placement is not None:
        for task in plan.tasks:
            want = placement.get(task.task_id)
            if want is not None and task.device != want:
                violations.append(
                    f"task {task.task_id!r} runs on {task.device!r} but the "
                    f"placement says {want!r}"
                )
    return violations


def check_task_order(plan: HeteroPlan, order: Sequence[str]) -> list[str]:
    """Is ``order`` (an executor's completion order) a linearization of
    the plan's task DAG covering every task exactly once?"""
    violations: list[str] = []
    expected = {t.task_id for t in plan.tasks}
    counts = Counter(order)
    for tid, n in counts.items():
        if n > 1:
            violations.append(f"task {tid!r} completed {n} times")
    missing = expected - set(counts)
    if missing:
        violations.append(f"tasks never completed: {sorted(missing)}")
    extra = set(counts) - expected
    if extra:
        violations.append(f"unknown tasks completed: {sorted(extra)}")
    pos = {tid: i for i, tid in enumerate(order)}
    for task in plan.tasks:
        for src in task.sources.values():
            if src.kind != "task":
                continue
            if (
                task.task_id in pos
                and src.ref in pos
                and pos[src.ref] > pos[task.task_id]
            ):
                violations.append(
                    f"task {task.task_id!r} completed before its "
                    f"dependency {src.ref!r}"
                )
    return violations


# ----------------------------------------------------------------------
# execution invariants (simulator timeline legality)
# ----------------------------------------------------------------------


def check_execution(
    plan: HeteroPlan, result: ExecutionResult, host: str = _HOST
) -> list[str]:
    """Causality and resource-exclusivity of a simulated execution.

    Verifies the §IV-D executor semantics on the recorded timeline:
    per-device serialization, one matching PCIe transfer per cross-device
    edge (started after the producer finished, delivered before the
    consumer started), serialized usage of each device-pair link, and
    host delivery of every off-host model output by the reported latency.
    ``host`` is where external inputs live and outputs land (the default
    machine's ``"cpu"`` when omitted).
    """
    violations: list[str] = []
    recs = {r.task_id: r for r in result.tasks}
    by_id = {t.task_id: t for t in plan.tasks}

    for task in plan.tasks:
        if task.task_id not in recs:
            violations.append(f"no execution record for task {task.task_id!r}")
    if len(result.tasks) != len(plan.tasks):
        violations.append(
            f"{len(result.tasks)} task records for {len(plan.tasks)} tasks"
        )
    for rec in result.tasks:
        task = by_id.get(rec.task_id)
        if task is None:
            violations.append(f"record for unknown task {rec.task_id!r}")
        elif rec.device != task.device:
            violations.append(
                f"task {rec.task_id!r} recorded on {rec.device!r} but "
                f"planned on {task.device!r}"
            )
        if rec.finish < rec.start - _EPS:
            violations.append(f"task {rec.task_id!r} finishes before it starts")

    # Devices execute one task at a time (footnote 2).
    for device in sorted({r.device for r in result.tasks}):
        timeline = sorted(
            (r for r in result.tasks if r.device == device),
            key=lambda r: (r.start, r.finish),
        )
        for prev, cur in zip(timeline, timeline[1:]):
            if cur.start < prev.finish - _EPS:
                violations.append(
                    f"tasks {prev.task_id!r} and {cur.task_id!r} overlap "
                    f"on {device}"
                )

    # Each device-pair link is one serialized resource.  The transfer
    # records carry only the destination, so the source side is derived:
    # external tensors leave the host, task outputs leave the device the
    # producer was recorded on.
    def transfer_src(t) -> str:
        if t.what.startswith("task:"):
            tid = t.what[len("task:"):].rsplit("[", 1)[0]
            rec = recs.get(tid)
            if rec is not None:
                return rec.device
        return host

    by_link: dict[tuple[str, str], list] = {}
    for t in result.transfers:
        by_link.setdefault(_pair(transfer_src(t), t.dest_device), []).append(t)
    for link_pair in sorted(by_link):
        link = sorted(by_link[link_pair], key=lambda t: (t.start, t.finish))
        for prev, cur in zip(link, link[1:]):
            if cur.start < prev.finish - _EPS:
                violations.append(
                    f"transfers {prev.what!r} and {cur.what!r} overlap on "
                    f"the link {link_pair}"
                )

    def find_transfer(label: str, dest: str):
        for t in result.transfers:
            if t.what == label and t.dest_device == dest:
                return t
        return None

    for task in plan.tasks:
        rec = recs.get(task.task_id)
        if rec is None:
            continue
        for src in task.sources.values():
            if src.kind == "external":
                produced_at, produced_on = 0.0, host
                label = f"external:{src.ref}"
            else:
                producer = recs.get(src.ref)
                if producer is None:
                    continue
                produced_at = producer.finish
                produced_on = producer.device
                label = f"task:{src.ref}[{src.output_index}]"
            if produced_on == task.device:
                if rec.start < produced_at - _EPS:
                    violations.append(
                        f"task {task.task_id!r} starts before its same-device "
                        f"input {label} is ready"
                    )
                continue
            transfer = find_transfer(label, task.device)
            if transfer is None:
                violations.append(
                    f"cross-device edge {label} -> {task.task_id!r} has no "
                    "matching transfer"
                )
                continue
            if transfer.start < produced_at - _EPS:
                violations.append(
                    f"transfer {label} starts before its producer finishes"
                )
            if rec.start < transfer.finish - _EPS:
                violations.append(
                    f"task {task.task_id!r} starts before transfer {label} "
                    "delivers"
                )

    # Every model output must be host-resident by the reported latency.
    for tid, idx in plan.outputs:
        rec = recs.get(tid)
        if rec is None:
            continue
        if rec.device == host:
            arrival = rec.finish
        else:
            label = f"task:{tid}[{idx}]"
            transfer = find_transfer(label, host)
            if transfer is None:
                violations.append(
                    f"off-host output ({tid!r}, {idx}) never transferred "
                    "to the host"
                )
                continue
            arrival = transfer.finish
        if result.latency < arrival - _EPS:
            violations.append(
                f"latency {result.latency} precedes arrival of output "
                f"({tid!r}, {idx}) at {arrival}"
            )
    return violations


# ----------------------------------------------------------------------
# aggregate entry point
# ----------------------------------------------------------------------


def validate_schedule(
    graph: Graph,
    partition: PhasedPartition,
    placement: Mapping[str, str],
    plan: HeteroPlan,
    result: ExecutionResult | None = None,
    devices: Sequence[str] | None = None,
    host: str = _HOST,
) -> list[str]:
    """Run every applicable invariant over one scheduling decision.

    ``devices``/``host`` describe the machine the schedule targets; the
    defaults are the 2-device machine's.
    """
    violations = check_partition(graph, partition)
    violations += check_placement(partition, placement, devices=devices)
    violations += check_plan(
        plan, graph=graph, partition=partition, placement=placement,
        devices=devices,
    )
    if result is not None:
        violations += check_execution(plan, result, host=host)
    return violations
