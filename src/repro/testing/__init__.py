"""Conformance tooling: graph fuzzer, differential oracle, invariants.

This package is shipped library code, not test scaffolding: the pytest
suites, the ``python -m repro fuzz`` CLI, the CI smoke job, and the
engine's runtime debug validation (``REPRO_VALIDATE=1``) all call the
same entry points, so a failure found anywhere reproduces everywhere
from its seed.
"""

from repro.testing.generators import (
    FuzzCase,
    GeneratorConfig,
    case_rng,
    generate_cases,
    generate_graph,
)
from repro.testing.invariants import (
    assert_valid,
    check_execution,
    check_partition,
    check_placement,
    check_plan,
    check_task_order,
    validate_schedule,
)
from repro.testing.minimize import MinimizationResult, minimize_graph
from repro.testing.oracle import (
    DifferentialReport,
    ExecutorOutcome,
    run_differential,
)
from repro.testing.fuzz import (
    FuzzFailure,
    FuzzReport,
    load_artifact,
    replay_case,
    run_campaign,
)

__all__ = [
    "FuzzCase",
    "GeneratorConfig",
    "case_rng",
    "generate_cases",
    "generate_graph",
    "assert_valid",
    "check_execution",
    "check_partition",
    "check_placement",
    "check_plan",
    "check_task_order",
    "validate_schedule",
    "MinimizationResult",
    "minimize_graph",
    "DifferentialReport",
    "ExecutorOutcome",
    "run_differential",
    "FuzzFailure",
    "FuzzReport",
    "load_artifact",
    "replay_case",
    "run_campaign",
]
