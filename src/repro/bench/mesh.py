"""Mesh scaling bench: the zoo across 2/3/4-device meshes.

Each model is scheduled on a ladder of meshes — the paper's 2-device
CPU+GPU machine, then ``make_mesh`` topologies adding PCIe Titan-V GPUs
— by every registered policy, and the best policy's plan is priced by
the noise-free simulator.  The scoreboard reports per (model, mesh
size): the winning policy, makespan, total transfer volume, and the
speedup over the same model's best 2-device makespan.

The point of the bench is the tentpole claim that the scheduler
*exploits* added devices rather than merely tolerating them: wide
graphs (parallel towers in ``wide_deep``/``siamese``/``mtdnn``, the
fire-module fan-outs in ``squeezenet``) have phases with 3+ mutually
independent subgraphs, so a third device shortens the phase makespan
whenever the extra PCIe traffic it induces is cheaper than the compute
it offloads.  Chain-like models stay flat — added devices sit idle and
the scoreboard shows speedup ~1.0, which is the honest outcome, not a
failure.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.partition import partition_graph
from repro.core.placement import build_hetero_plan
from repro.core.profiler import CompilerAwareProfiler
from repro.core.scheduler import (
    LatencyOracle,
    available_policies,
    schedule_with_policy,
)
from repro.devices.machine import Machine, default_machine, make_mesh
from repro.errors import SchedulingError
from repro.models.zoo import build_model
from repro.runtime.simulator import simulate

__all__ = [
    "MESH_MODELS",
    "MESH_DEVICE_COUNTS",
    "best_scaling_model",
    "mesh_for",
    "mesh_scoreboard",
    "run_mesh_scaling",
]

_MS = 1e3
_MB = 1e6

#: Zoo models of the scaling ladder: wide graphs whose phases hold 3+
#: independent subgraphs (the shapes extra devices can actually help).
MESH_MODELS = ("wide_deep", "siamese", "mtdnn", "squeezenet")

#: The mesh-size ladder: the paper machine, then +1 and +2 PCIe GPUs.
MESH_DEVICE_COUNTS = (2, 3, 4)


def mesh_for(n_devices: int, noisy: bool = False) -> Machine:
    """The bench's canonical ``n_devices``-device mesh.

    2 devices is the paper's CPU+GPU machine (so the ladder's baseline
    is exactly the pre-mesh repro); larger sizes add identical Titan-V
    GPUs over the shared PCIe default link via :func:`make_mesh`.
    """
    if n_devices < 2:
        raise SchedulingError(f"mesh ladder starts at 2 devices, got {n_devices}")
    if n_devices == 2:
        return default_machine(noisy=noisy)
    return make_mesh(num_gpus=n_devices - 1, noisy=noisy)


def run_mesh_scaling(
    models: Sequence[str] = MESH_MODELS,
    device_counts: Sequence[int] = MESH_DEVICE_COUNTS,
    policies: Sequence[str] | None = None,
    seed: int = 0,
    tiny: bool = False,
) -> list[dict]:
    """Play the scaling ladder: one row per (model, mesh size).

    For each rung every policy schedules the model (forfeits are
    skipped, as in the tournament) and the lowest-latency placement is
    re-simulated noise-free for its makespan and transfer volume.  Rows
    carry ``speedup_vs_2dev`` — this model's best smallest-mesh makespan
    divided by this rung's — so the scoreboard reads as strong/weak
    scaling at a glance.
    """
    policy_names = tuple(policies) if policies else available_policies()
    unknown = [p for p in policy_names if p not in available_policies()]
    if unknown:
        raise SchedulingError(
            f"unknown mesh-bench policies {unknown}; "
            f"registered: {available_policies()}"
        )
    rows: list[dict] = []
    for model_name in models:
        graph = build_model(model_name, tiny=tiny)
        partition = partition_graph(graph)
        for n_devices in device_counts:
            machine = mesh_for(n_devices)
            profiles = CompilerAwareProfiler(machine=machine).profile_partition(
                partition
            )
            oracle = LatencyOracle(graph, partition, profiles, machine)
            best: tuple[float, str, Mapping[str, str]] | None = None
            for policy in policy_names:
                try:
                    decision = schedule_with_policy(
                        policy,
                        graph,
                        partition,
                        profiles,
                        machine,
                        oracle=oracle,
                        seed=seed,
                    )
                except SchedulingError:
                    continue  # e.g. exhaustive on |devices|^k placements
                if best is None or decision.latency < best[0]:
                    best = (decision.latency, policy, decision.placement)
            if best is None:
                raise SchedulingError(
                    f"every policy forfeited {model_name} on the "
                    f"{n_devices}-device mesh"
                )
            _, policy, placement = best
            plan = build_hetero_plan(
                graph, partition, profiles, placement,
                devices=machine.device_names,
            )
            result = simulate(plan, machine)
            rows.append(
                {
                    "model": model_name,
                    "devices": n_devices,
                    "policy": policy,
                    "makespan_ms": result.latency * _MS,
                    "transfer_mb": sum(t.n_bytes for t in result.transfers)
                    / _MB,
                    "devices_used": len({t.device for t in plan.tasks}),
                }
            )
    base_count = min(device_counts)
    baseline = {
        r["model"]: r["makespan_ms"]
        for r in rows
        if r["devices"] == base_count
    }
    for row in rows:
        base = baseline.get(row["model"])
        row["speedup_vs_2dev"] = (
            base / row["makespan_ms"] if base else float("nan")
        )
    return rows


def best_scaling_model(
    rows: Sequence[Mapping[str, object]], devices: int = 3
) -> tuple[str, float]:
    """The (model, speedup) that scales best at the given mesh size."""
    candidates = [
        (str(r["model"]), float(r["speedup_vs_2dev"]))  # type: ignore[arg-type]
        for r in rows
        if r["devices"] == devices
    ]
    if not candidates:
        raise SchedulingError(f"no rows for {devices}-device meshes")
    return max(candidates, key=lambda kv: kv[1])


def mesh_scoreboard(rows: Sequence[Mapping[str, object]]) -> str:
    """Render scaling rows with the shared reporting formatter."""
    from repro.bench.reporting import format_table

    display = [
        {
            "model": r["model"],
            "devices": r["devices"],
            "policy": r["policy"],
            "makespan_ms": r["makespan_ms"],
            "transfer_mb": r["transfer_mb"],
            "speedup_vs_2dev": r["speedup_vs_2dev"],
        }
        for r in rows
    ]
    return format_table(
        display, title="Mesh scaling (best policy per model x mesh size)"
    )
