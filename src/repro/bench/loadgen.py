"""Shared load generation for the throughput benchmarks and the CLI.

One home for closed-loop driving logic so the simulated stream benchmark
(``bench_ext_throughput``) and the real-thread serving benchmark
(``bench_serving_load``) cannot drift apart:

* :func:`closed_loop_burst` — replay a burst through the *simulated*
  shared-timeline stream model (:mod:`repro.runtime.stream`);
* :func:`run_closed_loop` — drive a callable with ``concurrency`` real
  threads, each issuing its next request as soon as the previous one
  completes (a classic closed loop), returning wall-clock throughput;
* :func:`elementwise_chain` — a stack-safe test-scale model (elementwise
  + axis-1 reduction ops only) whose batches the serving layer can
  execute as one concatenated dispatch, making batching's throughput
  effect measurable without BLAS noise.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.devices.machine import Machine
from repro.errors import ExecutionError
from repro.ir.builder import GraphBuilder
from repro.ir.graph import Graph
from repro.runtime.plan import HeteroPlan
from repro.runtime.stream import StreamResult, simulate_stream

__all__ = [
    "LoadResult",
    "run_closed_loop",
    "closed_loop_burst",
    "elementwise_chain",
]


@dataclass(frozen=True)
class LoadResult:
    """Outcome of one closed-loop load run.

    Attributes:
        n_requests: requests completed successfully.
        n_errors: requests that raised (their latencies are excluded).
        wall_time_s: first-submit to last-completion wall time.
        latencies_s: per-request wall latency, in completion order.
    """

    n_requests: int
    n_errors: int
    wall_time_s: float
    latencies_s: tuple[float, ...]

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second over the whole run."""
        if self.wall_time_s <= 0:
            return float("inf")
        return self.n_requests / self.wall_time_s


def run_closed_loop(
    submit: Callable[[int], object],
    n_requests: int,
    concurrency: int,
    clock: Callable[[], float] = time.perf_counter,
) -> LoadResult:
    """Drive ``submit`` from ``concurrency`` threads, closed loop.

    Each thread claims the next request index and calls ``submit(i)``,
    issuing its next request the moment the call returns — so exactly
    ``concurrency`` requests are in flight at any time.  Exceptions from
    ``submit`` are counted as errors, not propagated.
    """
    if n_requests <= 0:
        raise ExecutionError("n_requests must be positive")
    if concurrency <= 0:
        raise ExecutionError("concurrency must be positive")
    counter = iter(range(n_requests))
    lock = threading.Lock()
    latencies: list[float] = []
    errors = [0]

    def loop() -> None:
        while True:
            with lock:
                index = next(counter, None)
            if index is None:
                return
            began = clock()
            try:
                submit(index)
            except Exception:
                with lock:
                    errors[0] += 1
                continue
            elapsed = clock() - began
            with lock:
                latencies.append(elapsed)

    threads = [
        threading.Thread(target=loop, name=f"loadgen-{i}", daemon=True)
        for i in range(min(concurrency, n_requests))
    ]
    began = clock()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = clock() - began
    return LoadResult(
        n_requests=len(latencies),
        n_errors=errors[0],
        wall_time_s=wall,
        latencies_s=tuple(latencies),
    )


def closed_loop_burst(
    plan: HeteroPlan,
    machine: Machine,
    n_requests: int,
    interarrival_s: float = 0.0,
    rng=None,
) -> StreamResult:
    """Simulated closed-loop burst: ``n_requests`` through ``plan``.

    A thin façade over :func:`~repro.runtime.stream.simulate_stream`
    (arrival interval 0 = every request queued at t=0), kept here so the
    simulated and real-thread benchmarks share one entry point.
    """
    return simulate_stream(
        plan, machine, n_requests=n_requests, interarrival_s=interarrival_s,
        rng=rng,
    )


def elementwise_chain(
    batch: int = 4, width: int = 64, depth: int = 6
) -> Graph:
    """A stack-safe test-scale model: elementwise/axis-1 ops only.

    Every op is row-independent along axis 0, so
    :func:`~repro.serving.batcher.analyze_stack_safety` approves the
    compiled plan and the serving layer can execute whole batches as one
    concatenated dispatch — the configuration the batching benchmark
    needs to measure a real throughput effect at test scale.
    """
    if depth < 1:
        raise ExecutionError(f"depth must be >= 1, got {depth}")
    b = GraphBuilder(f"elementwise_chain_b{batch}w{width}d{depth}")
    x = b.input("x", (batch, width))
    value = x
    for i in range(depth):
        value = b.op("tanh" if i % 2 == 0 else "sigmoid", value)
        value = b.op("add", value, x)
        gate = b.op("reduce_mean", value, axis=1, keepdims=True)
        value = b.op("multiply", value, gate)
    return b.build(value)
