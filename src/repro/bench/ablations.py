"""Ablation studies for DUET's three design choices.

The paper motivates (i) compiler-*aware* profiling (§IV-B), (ii)
*coarse-grained* partitioning (§III-B, footnote 1), and (iii) measured
*correction* on top of greedy placement (§IV-C).  Each ablation removes
one ingredient and measures what it costs.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.workloads import EVAL_MODELS
from repro.compiler.pipeline import Compiler
from repro.core.partition import partition_graph, partition_per_operator
from repro.core.placement import build_hetero_plan
from repro.core.profiler import CompilerAwareProfiler
from repro.core.scheduler import GreedyCorrectionScheduler
from repro.core.schedulers import exhaustive_placement
from repro.devices.machine import Machine, default_machine
from repro.models import build_model
from repro.runtime.simulator import simulate

__all__ = [
    "CORRECTION_ABLATION_MODELS",
    "PROFILING_ABLATION_MODELS",
    "ablation_correction",
    "ablation_granularity",
    "ablation_profiling",
    "build_comm_heavy_model",
    "build_fusion_sensitive_model",
]

_MS = 1e3

# The paper's three workloads have such strong device contrasts
# (Table II) that even misinformed scheduling often lands on the same
# placement; the synthetic models below sit near the decision boundaries
# instead, so the ablated ingredient actually decides the outcome.
PROFILING_ABLATION_MODELS = (*EVAL_MODELS, "fusion_sensitive")
CORRECTION_ABLATION_MODELS = (*EVAL_MODELS, "comm_heavy")


def _build(name: str):
    if name == "fusion_sensitive":
        return build_fusion_sensitive_model()
    if name == "comm_heavy":
        return build_comm_heavy_model()
    return build_model(name)


def build_fusion_sensitive_model():
    """Three-branch model whose placement flips with profiling fidelity.

    * branch A: a 60-op elementwise tower.  Fused it is one GPU-friendly
      kernel (~0.13 ms GPU vs ~0.36 ms CPU); unfused it is 60 launches and
      looks CPU-friendly (~0.51 ms CPU vs ~0.73 ms GPU).  A compiler-
      unaware profiler therefore reports the *wrong device preference*
      and flags A as the phase's critical subgraph.
    * branch B: a conv stack (firmly GPU either way).

    The aware scheduler overlaps nothing with A on GPU behind B; the
    naive one pins A to the CPU and serializes the phase behind it.
    """
    import itertools

    from repro.ir import GraphBuilder
    from repro.models.common import conv_bn_relu

    b = GraphBuilder("fusion_sensitive")
    xa = b.input("xa", (1, 65536))
    xb = b.input("xb", (1, 32, 32, 32))

    ops = itertools.cycle(["tanh", "sigmoid", "relu", "exp", "abs", "negative"])
    ya = xa
    for _ in range(60):
        ya = b.op(next(ops), ya)

    yb = xb
    for i, ch in enumerate((64, 128, 128)):
        yb = conv_bn_relu(b, yb, ch, 3, 1, 1, f"b_conv{i}")
    yb = b.op("global_avg_pool2d", yb)
    yb = b.op("reshape", yb, shape=(1, 128))

    # Parameter-free join keeps the head trivial on either device.
    joint = b.op("concat", ya, yb, axis=1)
    return b.build(b.op("reduce_mean", joint, axis=1, keepdims=True))


def build_comm_heavy_model():
    """Model where greedy placement ignores decisive transfer costs.

    Branch A is a memory-bound feature-reordering pipeline over a 16 MB
    tensor whose result is a *model output* (host-bound).  Its pure
    compute is faster on the GPU (650 vs 100 GB/s of memory bandwidth),
    which is all greedy steps 1-2 look at — but GPU placement pays a
    16 MB host→device and a 16 MB device→host PCIe trip (~2.7 ms), far
    exceeding the compute gain.  Branch B is a small LSTM classifier that
    keeps the phase multi-path.  Step 3's measured correction is the only
    part of the scheduler that can see the transfers and move A back to
    the CPU.
    """
    import numpy as np

    from repro.ir import GraphBuilder
    from repro.models.common import dense_layer, last_timestep, lstm_layer

    b = GraphBuilder("comm_heavy")
    n = 4 * 1024 * 1024  # 16 MB of float32 features
    xa = b.input("xa", (1, n))
    xc = b.input("xc", (1, 20, 256))

    # Feature-reordering branch: injective memory ops + a scale.
    side = 2048
    ya = b.op("reverse", xa, axis=1)
    ya = b.op("reshape", ya, shape=(side, side))
    ya = b.op("transpose", ya)
    ya = b.op("reshape", ya, shape=(1, n))
    scale = b.literal(np.asarray([0.5], dtype=np.float32), name="a_scale")
    ya = b.op("multiply", ya, scale)  # (1, 4M) model output

    yc = lstm_layer(b, xc, 256, "c_lstm", return_sequences=True)
    yc = last_timestep(b, yc)
    yc = dense_layer(b, yc, 16, "c_head", activation=None)

    return b.build(ya, yc)


def ablation_profiling(
    machine: Machine | None = None,
    models: Sequence[str] = PROFILING_ABLATION_MODELS,
) -> list[dict]:
    """Compiler-aware vs. compiler-unaware profiling.

    The *naive* scheduler sees per-operator (unfused) timings — what a
    framework profiler reports — and makes its decisions in that world.
    Both resulting placements are then evaluated against the real, fused
    executables, so the only difference is the quality of the information
    the scheduler acted on.
    """
    machine = machine or default_machine(noisy=False)
    rows = []
    for name in models:
        graph = _build(name)
        partition = partition_graph(graph)

        aware_profiles = CompilerAwareProfiler(
            machine=machine, compiler=Compiler(fuse=True)
        ).profile_partition(partition)
        naive_profiles = CompilerAwareProfiler(
            machine=machine, compiler=Compiler(fuse=False)
        ).profile_partition(partition)

        scheduler = GreedyCorrectionScheduler(machine=machine)
        aware = scheduler.schedule(graph, partition, aware_profiles)
        naive = scheduler.schedule(graph, partition, naive_profiles)

        def true_latency(placement) -> float:
            plan = build_hetero_plan(graph, partition, aware_profiles, placement)
            return simulate(plan, machine).latency

        aware_ms = true_latency(aware.placement) * _MS
        naive_ms = true_latency(naive.placement) * _MS
        rows.append(
            {
                "model": name,
                "aware_ms": aware_ms,
                "naive_ms": naive_ms,
                "penalty": naive_ms / aware_ms,
                "decisions_differ": aware.placement != naive.placement,
            }
        )
    return rows


def ablation_granularity(
    machine: Machine | None = None,
    models: Sequence[str] = EVAL_MODELS,
) -> list[dict]:
    """Coarse-grained phases vs. operator-level scheduling.

    Per-operator subgraphs cannot be fused across (each compiles alone)
    and every value crossing a device boundary pays a PCIe hop; the
    greedy scheduler is the same in both arms.
    """
    machine = machine or default_machine(noisy=False)
    scheduler = GreedyCorrectionScheduler(machine=machine)
    rows = []
    for name in models:
        graph = _build(name)
        out = {}
        for label, partition in (
            ("coarse", partition_graph(graph)),
            ("per_op", partition_per_operator(graph)),
        ):
            profiles = CompilerAwareProfiler(machine=machine).profile_partition(
                partition
            )
            result = scheduler.schedule(graph, partition, profiles)
            sim = simulate(result.plan, machine)
            out[label] = {
                "latency_ms": result.latency * _MS,
                "subgraphs": len(partition.subgraphs),
                "transfers": len(sim.transfers),
                "launches": sum(
                    k.cost.total_launches
                    for t in result.plan.tasks
                    for k in t.module.kernels
                ),
            }
        rows.append(
            {
                "model": name,
                "coarse_ms": out["coarse"]["latency_ms"],
                "per_op_ms": out["per_op"]["latency_ms"],
                "penalty": out["per_op"]["latency_ms"] / out["coarse"]["latency_ms"],
                "coarse_subgraphs": out["coarse"]["subgraphs"],
                "per_op_subgraphs": out["per_op"]["subgraphs"],
                "coarse_transfers": out["coarse"]["transfers"],
                "per_op_transfers": out["per_op"]["transfers"],
            }
        )
    return rows


def ablation_correction(
    machine: Machine | None = None,
    models: Sequence[str] = CORRECTION_ABLATION_MODELS,
    exhaustive_cap: int = 14,
) -> list[dict]:
    """Greedy initialization alone vs. greedy + measured correction.

    Also reports the exhaustive optimum where the subgraph count permits.
    """
    machine = machine or default_machine(noisy=False)
    rows = []
    for name in models:
        graph = _build(name)
        partition = partition_graph(graph)
        profiles = CompilerAwareProfiler(machine=machine).profile_partition(
            partition
        )
        scheduler = GreedyCorrectionScheduler(machine=machine)
        result = scheduler.schedule(graph, partition, profiles)

        ideal_ms = None
        if len(partition.subgraphs) <= exhaustive_cap:
            _, ideal = exhaustive_placement(
                graph, partition, profiles, machine,
                max_subgraphs=exhaustive_cap,
            )
            ideal_ms = ideal * _MS
        rows.append(
            {
                "model": name,
                "greedy_only_ms": result.initial_latency * _MS,
                "corrected_ms": result.latency * _MS,
                "gain": result.initial_latency / result.latency,
                "swaps": len(result.corrections),
                "ideal_ms": ideal_ms if ideal_ms is not None else "-",
            }
        )
    return rows
