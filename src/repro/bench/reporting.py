"""Plain-text reporting: tables, bars, and timelines for experiment rows."""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_bars", "format_timeline", "format_hetero_timeline"]


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 100 else f"{value:.1f}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, object]], title: str = "") -> str:
    """Render row dicts as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)"
    columns = list(rows[0].keys())
    cells = [[_fmt(r.get(c, "")) for c in columns] for r in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in cells:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_bars(
    rows: Sequence[Mapping[str, object]],
    label_key: str,
    value_key: str,
    title: str = "",
    width: int = 48,
) -> str:
    """Render a horizontal bar chart (one bar per row)."""
    if not rows:
        return f"{title}\n(no rows)"
    values = [float(r[value_key]) for r in rows]
    labels = [str(r[label_key]) for r in rows]
    peak = max(values) or 1.0
    label_w = max(len(l) for l in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(1, round(width * value / peak))
        lines.append(f"{label.ljust(label_w)}  {bar} {value:.2f}")
    return "\n".join(lines)


def format_timeline(
    segments: Sequence[Mapping[str, object]],
    total_ms: float | None = None,
    width: int = 72,
    max_rows: int = 30,
    title: str = "",
) -> str:
    """Render kernel segments (from fig04_timeline) as an ASCII Gantt strip.

    Segments shorter than one cell are shown as a single mark; only the
    ``max_rows`` longest segments get their own labelled row.
    """
    if not segments:
        return f"{title}\n(no segments)"
    end = total_ms or max(float(s["end_ms"]) for s in segments)
    end = end or 1.0
    ordered = sorted(segments, key=lambda s: -float(s["duration_ms"]))[:max_rows]
    ordered.sort(key=lambda s: float(s["start_ms"]))
    lines = [title] if title else []
    lines.append(f"0 ms {' ' * (width - 12)} {end:.2f} ms")
    for seg in ordered:
        start = int(width * float(seg["start_ms"]) / end)
        span = max(1, int(width * float(seg["duration_ms"]) / end))
        strip = " " * start + "█" * min(span, width - start)
        name = str(seg["kernel"])
        if len(name) > 34:
            name = name[:31] + "..."
        lines.append(f"|{strip.ljust(width)}| {name} ({float(seg['duration_ms']):.2f} ms)")
    return "\n".join(lines)


def format_hetero_timeline(result, width: int = 72, title: str = "") -> str:
    """Render an ExecutionResult as two device lanes plus a PCIe lane.

    One character cell per time slice; ``█`` marks busy time.  Gives the
    Fig. 4-style at-a-glance view of how a heterogeneous plan overlaps the
    devices and where the transfers sit.
    """
    spans = {"cpu": [], "gpu": [], "pcie": []}
    for rec in result.tasks:
        spans[rec.device].append((rec.start, rec.finish, rec.task_id))
    for tr in result.transfers:
        spans["pcie"].append((tr.start, tr.finish, tr.what))
    end = max(
        [result.latency]
        + [f for lane in spans.values() for _, f, _ in lane]
    )
    end = end or 1.0
    lines = [title] if title else []
    lines.append(f"total {end * 1e3:.3f} ms; one cell = {end / width * 1e3:.3f} ms")
    for lane in ("cpu", "gpu", "pcie"):
        cells = [" "] * width
        for start, finish, _label in spans[lane]:
            lo = int(width * start / end)
            hi = max(lo + 1, int(width * finish / end))
            for i in range(lo, min(hi, width)):
                cells[i] = "█"
        busy = sum(f - s for s, f, _ in spans[lane])
        lines.append(f"{lane:4s} |{''.join(cells)}| busy {busy * 1e3:7.3f} ms")
    return "\n".join(lines)
