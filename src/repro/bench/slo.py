"""Mixed-priority SLO benchmark: critical latency vs best-effort throughput.

The multi-tenant scheduling stack in :mod:`repro.serving` makes a
two-sided promise: a critical tenant's latency target holds *and* the
best-effort tenant is not starved to get there — strict priority plus
phase-boundary preemption bound the critical tail, while WFQ and the
anti-starvation escape keep bulk traffic flowing.  :func:`run_slo_mix`
measures both sides against a live frontend:

1. **isolated leg** — best-effort clients alone, closed loop, measuring
   the throughput ceiling;
2. **mixed leg** — the same best-effort flood plus paced critical
   clients (think time between requests, like an interactive caller)
   under a fresh frontend.

The :class:`SLOReport` then checks the acceptance invariants from the
issue: critical p99 within its SLO target with **zero** misses, the
best-effort tenant keeping at least ``be_threshold`` (default 70%) of
its isolated throughput, at least one phase-boundary preemption
actually observed (the run exercised the machinery, not a quiet lane),
and every successful response — preempted or not — bit-identical to a
solo :class:`~repro.runtime.session.EngineSession`.

``python -m repro slo-bench`` renders the scoreboard; the CI
``slo-smoke`` job runs a short configuration and uploads the per-tenant
scoreboard as an artifact.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.bench.reporting import format_table
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ExecutionError,
    LoadShedError,
    QueueFullError,
    ReproError,
)

__all__ = ["TenantStats", "SLOReport", "run_slo_mix"]

#: Terminal outcomes a request can reach, in reporting order.
OUTCOMES = ("ok", "error", "shed", "rejected", "expired", "mismatch")


@dataclass
class TenantStats:
    """One tenant's scoreboard over one leg of the benchmark."""

    tenant: str
    priority: str
    duration_s: float
    slo_p99_s: float | None = None
    counts: dict[str, int] = field(
        default_factory=lambda: dict.fromkeys(OUTCOMES, 0)
    )
    latencies_s: list[float] = field(default_factory=list)

    @property
    def submitted(self) -> int:
        return sum(self.counts.values())

    @property
    def throughput_rps(self) -> float:
        return self.counts["ok"] / self.duration_s if self.duration_s else 0.0

    def p99_s(self) -> float:
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(np.array(self.latencies_s), 99))

    @property
    def slo_misses(self) -> int:
        """Client-observed completions slower than the SLO target."""
        if self.slo_p99_s is None:
            return 0
        return sum(1 for lat in self.latencies_s if lat > self.slo_p99_s)

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "priority": self.priority,
            "submitted": self.submitted,
            "counts": dict(self.counts),
            "throughput_rps": round(self.throughput_rps, 2),
            "p99_ms": round(self.p99_s() * 1e3, 3),
            "slo_p99_ms": (
                None if self.slo_p99_s is None
                else round(self.slo_p99_s * 1e3, 3)
            ),
            "slo_misses": self.slo_misses,
        }


@dataclass
class SLOReport:
    """Everything :func:`run_slo_mix` measured, invariants included.

    Attributes:
        mixed: per-tenant scoreboards of the mixed leg.
        isolated_be_rps: best-effort throughput with no competition.
        be_ratio: mixed best-effort throughput over ``isolated_be_rps``.
        be_threshold: required ``be_ratio`` floor.
        preemptions: phase-boundary suspensions observed (from the
            ``duet_tenant_preemptions_total`` counter).
        mismatches: successful responses not bit-identical to the solo
            session — must be 0.
        hung_futures: admitted futures never reaching a terminal state —
            must be 0.
        slo_miss_metric: per-tenant ``duet_tenant_slo_miss_total``
            values from the frontend's registry (server-side view of
            the client-observed ``slo_misses``).
        metrics_text: the mixed frontend's final metrics exposition.
    """

    mixed: list[TenantStats]
    isolated_be_rps: float
    be_ratio: float
    be_threshold: float
    preemptions: int
    mismatches: int
    hung_futures: int
    slo_miss_metric: dict[str, float] = field(default_factory=dict)
    metrics_text: str = ""

    def tenant(self, name: str) -> TenantStats:
        for stats in self.mixed:
            if stats.tenant == name:
                return stats
        raise ExecutionError(f"no tenant named {name!r}")

    def invariant_failures(self) -> list[str]:
        """Every violated acceptance invariant, human-readable."""
        failures = []
        for stats in self.mixed:
            if stats.slo_p99_s is None:
                continue
            p99 = stats.p99_s()
            if p99 > stats.slo_p99_s:
                failures.append(
                    f"tenant {stats.tenant!r} p99 {p99 * 1e3:.1f}ms exceeds "
                    f"its {stats.slo_p99_s * 1e3:.1f}ms SLO target"
                )
            if stats.priority == "critical" and stats.slo_misses:
                failures.append(
                    f"critical tenant {stats.tenant!r} missed its SLO on "
                    f"{stats.slo_misses} request(s); required zero"
                )
        if self.be_ratio < self.be_threshold:
            failures.append(
                f"best-effort throughput fell to {self.be_ratio:.2f}x of "
                f"its isolated baseline (required >= "
                f"{self.be_threshold:.2f}x)"
            )
        if self.preemptions < 1:
            failures.append(
                "no phase-boundary preemption was observed; the mixed "
                "load never exercised the preemption machinery"
            )
        if self.mismatches:
            failures.append(
                f"{self.mismatches} successful response(s) were not "
                "bit-identical to the solo session"
            )
        if self.hung_futures:
            failures.append(
                f"{self.hung_futures} admitted future(s) never reached a "
                "terminal state"
            )
        return failures

    @property
    def ok(self) -> bool:
        return not self.invariant_failures()

    def scoreboard(self) -> dict:
        """Plain-data per-tenant scoreboard (the CI artifact)."""
        return {
            "tenants": [stats.to_dict() for stats in self.mixed],
            "isolated_best_effort_rps": round(self.isolated_be_rps, 2),
            "best_effort_ratio": round(self.be_ratio, 3),
            "best_effort_threshold": self.be_threshold,
            "preemptions": self.preemptions,
            "mismatches": self.mismatches,
            "hung_futures": self.hung_futures,
            "slo_miss_metric": dict(self.slo_miss_metric),
            "ok": self.ok,
            "failures": self.invariant_failures(),
        }

    def render(self) -> str:
        """The per-tenant table plus the invariant verdict."""
        rows = []
        for stats in self.mixed:
            rows.append(
                {
                    "tenant": stats.tenant,
                    "class": stats.priority,
                    "submitted": stats.submitted,
                    "ok": stats.counts["ok"],
                    "shed": stats.counts["shed"],
                    "expired": stats.counts["expired"],
                    "rps": round(stats.throughput_rps, 1),
                    "p99_ms": round(stats.p99_s() * 1e3, 3),
                    "slo_ms": (
                        "-" if stats.slo_p99_s is None
                        else round(stats.slo_p99_s * 1e3, 1)
                    ),
                    "misses": stats.slo_misses,
                }
            )
        lines = [format_table(rows, title="slo-mix tenant scoreboard")]
        lines.append(
            f"best-effort throughput: {self.be_ratio:.2f}x of isolated "
            f"baseline ({self.isolated_be_rps:.1f} rps; required >= "
            f"{self.be_threshold:.2f}x)"
        )
        lines.append(f"phase-boundary preemptions: {self.preemptions}")
        failures = self.invariant_failures()
        if failures:
            lines.append("INVARIANT FAILURES:")
            lines.extend(f"  - {f}" for f in failures)
        else:
            lines.append(
                "all SLO invariants held: critical p99 in target with zero "
                "misses, best-effort throughput preserved, preemption "
                "exercised, bit-identical responses"
            )
        return "\n".join(lines)

    def write_scoreboard(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.scoreboard(), fh, indent=2)
            fh.write("\n")


def _drive(
    frontend,
    model: str,
    corpus,
    expected,
    clients,
    duration_s: float,
):
    """Run per-tenant client threads for ``duration_s``.

    ``clients`` is a list of ``(stats, n_threads, think_s)``; each
    thread is closed-loop within its tenant (submit, wait, optionally
    think, repeat).  Outcomes and bit-identity are attributed to the
    thread's tenant scoreboard.  Returns (futures, mismatch_count).
    """
    stop = threading.Event()
    lock = threading.Lock()
    futures: list = []
    mismatches = [0]

    def client(stats: TenantStats, think_s: float, worker: int) -> None:
        k = worker
        while not stop.is_set():
            feeds = corpus[k % len(corpus)]
            want = expected[k % len(corpus)]
            k += 17  # decorrelate the corpus walk across threads
            began = time.perf_counter()
            outcome = None
            try:
                fut = frontend.submit(
                    feeds, model=model, tenant=stats.tenant
                )
                with lock:
                    futures.append(fut)
                result = fut.result(timeout_s=30.0)
                identical = len(result.outputs) == len(want) and all(
                    np.array_equal(got, ref)
                    for got, ref in zip(result.outputs, want)
                )
                outcome = "ok" if identical else "mismatch"
            except (CircuitOpenError, LoadShedError):
                outcome = "shed"
            except QueueFullError:
                outcome = "rejected"
            except DeadlineExceededError:
                outcome = "expired"
            except ReproError:
                outcome = "error"
            finally:
                elapsed = time.perf_counter() - began
                with lock:
                    stats.counts[outcome or "error"] += 1
                    if outcome == "ok":
                        stats.latencies_s.append(elapsed)
                    elif outcome == "mismatch":
                        mismatches[0] += 1
            if outcome not in ("ok", "error"):
                time.sleep(1e-3)  # don't spin-submit doomed requests
            elif think_s > 0:
                time.sleep(think_s)

    threads = []
    for stats, n_threads, think_s in clients:
        for i in range(n_threads):
            threads.append(
                threading.Thread(
                    target=client,
                    args=(stats, think_s, i),
                    name=f"slo-{stats.tenant}-{i}",
                    daemon=True,
                )
            )
    for t in threads:
        t.start()
    try:
        time.sleep(duration_s)
    finally:
        stop.set()
        for t in threads:
            t.join()
    return futures, mismatches[0]


def run_slo_mix(
    duration_s: float = 2.0,
    model: str = "wide_deep",
    tiny: bool = True,
    critical_clients: int = 1,
    critical_think_s: float = 0.05,
    critical_slo_s: float = 0.25,
    best_effort_clients: int = 4,
    corpus_size: int = 8,
    seed: int = 0,
    be_threshold: float = 0.7,
    pool_size: int = 1,
    collect_metrics: bool = True,
) -> SLOReport:
    """Measure the two-sided SLO promise against a live frontend.

    Args:
        duration_s: length of *each* leg (isolated, then mixed).
        model / tiny: the served zoo model; the default ``wide_deep``
            is the multi-phase model, so preemption points exist.
        critical_clients: paced interactive clients on the critical
            tenant.
        critical_think_s: idle time between a critical client's
            completion and its next submit (bounds critical demand so
            best-effort is measurable).
        critical_slo_s: the critical tenant's p99 SLO target.
        best_effort_clients: closed-loop flood threads on the
            best-effort tenant.
        corpus_size / seed: the shared seeded input corpus.
        be_threshold: required mixed/isolated best-effort throughput
            ratio.
        pool_size: lane worker threads (1 keeps contention maximal and
            the preemption story observable).
    """
    from repro.core import DuetEngine
    from repro.devices import default_machine
    from repro.ir import make_inputs
    from repro.models import build_model
    from repro.runtime.session import EngineSession
    from repro.serving import ServingConfig, TenantConfig, TenantRegistry

    if duration_s <= 0:
        raise ExecutionError(f"duration_s must be > 0, got {duration_s}")
    if corpus_size < 1:
        raise ExecutionError(f"corpus_size must be >= 1, got {corpus_size}")
    if critical_clients < 1 or best_effort_clients < 1:
        raise ExecutionError(
            "need at least one client per tenant: got "
            f"critical={critical_clients}, best_effort={best_effort_clients}"
        )

    graph = build_model(model, tiny=tiny)
    engine = DuetEngine(machine=default_machine(noisy=False))
    opt = engine.optimize(graph)

    corpus = [make_inputs(graph, seed=seed + i) for i in range(corpus_size)]
    reference = EngineSession(opt.plan, opt=opt)
    expected = [
        [np.copy(o) for o in reference.run(feeds).outputs] for feeds in corpus
    ]

    tenants = TenantRegistry(
        [
            TenantConfig(
                name="critical",
                priority="critical",
                weight=4.0,
                slo_p99_s=critical_slo_s,
            ),
            TenantConfig(name="best_effort", priority="best_effort"),
        ]
    )
    config = ServingConfig(
        tenants=tenants,
        pool_size=pool_size,
        submit_timeout_s=1.0,
        seed=seed,
    )

    def make_stats(name: str, priority: str, slo=None) -> TenantStats:
        return TenantStats(
            tenant=name,
            priority=priority,
            duration_s=duration_s,
            slo_p99_s=slo,
        )

    # Leg 1: best-effort alone — the throughput ceiling.
    iso_stats = make_stats("best_effort", "best_effort")
    frontend = engine.serve({model: opt}, config=config)
    try:
        iso_futures, iso_mismatch = _drive(
            frontend,
            model,
            corpus,
            expected,
            [(iso_stats, best_effort_clients, 0.0)],
            duration_s,
        )
    finally:
        frontend.close()
    iso_hung = sum(1 for fut in iso_futures if not fut.done())

    # Leg 2: the mixed-priority run under a fresh frontend.
    crit_stats = make_stats("critical", "critical", slo=critical_slo_s)
    be_stats = make_stats("best_effort", "best_effort")
    frontend = engine.serve({model: opt}, config=config)
    try:
        futures, mismatches = _drive(
            frontend,
            model,
            corpus,
            expected,
            [
                (crit_stats, critical_clients, critical_think_s),
                (be_stats, best_effort_clients, 0.0),
            ],
            duration_s,
        )
        preempt_counter = frontend.registry.counter(
            "duet_tenant_preemptions_total"
        )
        preemptions = int(preempt_counter.total())
        miss_counter = frontend.registry.counter("duet_tenant_slo_miss_total")
        slo_miss_metric = {
            "critical": miss_counter.value(model=model, tenant="critical"),
            "best_effort": miss_counter.value(
                model=model, tenant="best_effort"
            ),
        }
        metrics_text = frontend.render_metrics() if collect_metrics else ""
    finally:
        frontend.close()
    hung = iso_hung + sum(1 for fut in futures if not fut.done())

    iso_rps = iso_stats.throughput_rps
    ratio = (be_stats.throughput_rps / iso_rps) if iso_rps > 0 else 0.0
    return SLOReport(
        mixed=[crit_stats, be_stats],
        isolated_be_rps=iso_rps,
        be_ratio=ratio,
        be_threshold=be_threshold,
        preemptions=preemptions,
        mismatches=mismatches + iso_mismatch,
        hung_futures=hung,
        slo_miss_metric=slo_miss_metric,
        metrics_text=metrics_text,
    )
