"""Scheduler tournament: every policy against every model, twice.

Each registered scheduling policy (:func:`~repro.core.scheduler.
available_policies`) places each model of a small zoo, and the resulting
placement is priced by the simulator under both transfer disciplines —
the default *lazy* consumer-driven one and the double-buffered *overlap*
discipline (``simulate(..., overlap=True)``).  The output is a league
table: one row per (model, policy) with both latencies and the relative
overlap gain.

The zoo deliberately includes ``xfer_bound``, a transfer-bound model
built here: a heavy recurrent branch produces a *late* boundary tensor
while an 8 MB external input feeds the join directly.  Under the lazy
discipline the bulk host→device copy queues behind the late tensor on
the PCIe link; the overlap discipline ships it during the recurrent
branch's compute, cutting end-to-end latency by ~35% for placements
that put the join on the GPU.

``tournament_winner`` promotes the practical policy (the exhaustive
search is excluded — it is the reference optimum, not a contender) with
the lowest mean normalized latency; it is what ``DEFAULT_POLICY`` in
:mod:`repro.core.scheduler` documents.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.partition import partition_graph
from repro.core.profiler import CompilerAwareProfiler
from repro.core.scheduler import (
    LatencyOracle,
    available_policies,
    schedule_with_policy,
)
from repro.devices.machine import Machine, default_machine
from repro.errors import SchedulingError
from repro.ir.graph import Graph
from repro.models.zoo import build_model

__all__ = [
    "TOURNAMENT_MODELS",
    "TINY_TOURNAMENT_MODELS",
    "build_tournament_model",
    "build_xfer_bound_model",
    "league_table",
    "run_tournament",
    "tournament_winner",
]

_MS = 1e3

#: Models of the full-size league: four structurally distinct zoo models
#: plus the transfer-bound stress model built in this module.
TOURNAMENT_MODELS = ("wide_deep", "siamese", "mtdnn", "squeezenet", "xfer_bound")

#: Fast variant for CI smoke runs: same zoo, tiny configurations.
TINY_TOURNAMENT_MODELS = TOURNAMENT_MODELS


def build_xfer_bound_model() -> Graph:
    """A model whose critical path is a mis-ordered PCIe transfer.

    Three parallel branches join with a *direct* 8 MB external input:

    * ``u`` — a 40-step LSTM plus head on the CPU-friendly side; its
      small boundary tensor is produced *late* (~1.2 ms in).
    * ``w1``/``w2`` — trivial scales that keep the phase multi-path and
      give round-robin four subgraphs to alternate over.
    * ``xb`` — 8 MB of float32 features consumed by the join with no
      intermediate compute; it is ready at request arrival.

    The join lists ``u`` first, so a GPU-placed join under the lazy
    discipline serializes the bulk ``xb`` copy *behind* the late ``u``
    transfer; the overlap discipline ships ``xb`` at arrival, entirely
    inside the LSTM's compute window.
    """
    from repro.ir import GraphBuilder
    from repro.models.common import dense_layer, last_timestep, lstm_layer

    b = GraphBuilder("xfer_bound")
    xu = b.input("xu", (1, 40, 256))
    xw1 = b.input("xw1", (1, 64))
    xw2 = b.input("xw2", (1, 64))
    n = 2 * 1024 * 1024  # 8 MB of float32 features
    xb = b.input("xb", (1, n))

    # Late branch: heavy recurrent compute, small output tensor.
    yu = lstm_layer(b, xu, 256, "u_lstm", return_sequences=True)
    yu = last_timestep(b, yu)
    yu = dense_layer(b, yu, 64, "u_head", activation=None)

    # Filler branches: keep the phase multi-path (and the subgraph count
    # even, so round-robin lands the join on the GPU).
    s1 = b.literal(np.asarray([2.0], dtype=np.float32), name="w1_scale")
    yw1 = b.op("multiply", xw1, s1)
    s2 = b.literal(np.asarray([0.5], dtype=np.float32), name="w2_scale")
    yw2 = b.op("multiply", xw2, s2)

    # Join: ``u`` first so the lazy link discipline serves it first.
    j = b.op("concat", yu, yw1, yw2, xb, axis=1)
    j = b.op("reduce_mean", j, axis=1, keepdims=True)
    return b.build(j)


def build_tournament_model(name: str, tiny: bool = False) -> Graph:
    """Resolve a tournament model name: the zoo plus ``xfer_bound``."""
    if name == "xfer_bound":
        # The stress model has one scale: its whole point is the fixed
        # ratio between the LSTM's compute and the 8 MB transfer.
        return build_xfer_bound_model()
    return build_model(name, tiny=tiny)


def run_tournament(
    models: Sequence[str] = TOURNAMENT_MODELS,
    policies: Sequence[str] | None = None,
    machine: Machine | None = None,
    seed: int = 0,
    tiny: bool = False,
) -> list[dict]:
    """Play the league: one row per (model, policy).

    Every policy for one model shares a single memoized lazy
    :class:`LatencyOracle` (scheduling decisions and the reported
    ``latency_ms`` come from it) plus one overlap oracle for the
    ``overlap_ms`` column, so revisited placements cost one simulation.
    """
    machine = machine or default_machine(noisy=False)
    policy_names = tuple(policies) if policies else available_policies()
    unknown = [p for p in policy_names if p not in available_policies()]
    if unknown:
        raise SchedulingError(
            f"unknown tournament policies {unknown}; "
            f"registered: {available_policies()}"
        )
    rows: list[dict] = []
    for model_name in models:
        graph = build_tournament_model(model_name, tiny=tiny)
        partition = partition_graph(graph)
        profiles = CompilerAwareProfiler(machine=machine).profile_partition(
            partition
        )
        lazy = LatencyOracle(graph, partition, profiles, machine)
        overlapped = LatencyOracle(
            graph, partition, profiles, machine, overlap=True
        )
        for policy in policy_names:
            try:
                decision = schedule_with_policy(
                    policy,
                    graph,
                    partition,
                    profiles,
                    machine,
                    oracle=lazy,
                    seed=seed,
                )
            except SchedulingError as exc:
                # e.g. exhaustive search over too many subgraphs — the
                # league records the forfeit instead of crashing.
                rows.append(
                    {
                        "model": model_name,
                        "policy": policy,
                        "latency_ms": float("nan"),
                        "overlap_ms": float("nan"),
                        "overlap_gain_pct": 0.0,
                        "note": str(exc),
                    }
                )
                continue
            lazy_lat = decision.latency
            over_lat = overlapped.measure(decision.placement)
            rows.append(
                {
                    "model": model_name,
                    "policy": policy,
                    "latency_ms": lazy_lat * _MS,
                    "overlap_ms": over_lat * _MS,
                    "overlap_gain_pct": (lazy_lat - over_lat)
                    / lazy_lat
                    * 100.0,
                    "note": "",
                }
            )
    return rows


def tournament_winner(
    rows: Sequence[Mapping[str, object]], column: str = "latency_ms"
) -> str:
    """The practical policy with the lowest mean normalized latency.

    Per model, each policy's latency in ``column`` (``"latency_ms"`` for
    the lazy league, ``"overlap_ms"`` for the overlapped one) is
    normalized by the best finite latency of that model (1.0 = matched
    the best); the winner minimizes the mean over models.
    ``exhaustive`` is excluded — it is the brute-force reference, not a
    deployable policy — and forfeited rows (NaN) score as 2x the
    model's best so a policy that cannot play a model does not win on
    the others.
    """
    by_model: dict[str, list[tuple[str, float]]] = {}
    for row in rows:
        by_model.setdefault(str(row["model"]), []).append(
            (str(row["policy"]), float(row[column]))  # type: ignore[arg-type]
        )
    scores: dict[str, list[float]] = {}
    for entries in by_model.values():
        finite = [lat for _, lat in entries if np.isfinite(lat)]
        if not finite:
            continue
        best = min(finite)
        for policy, lat in entries:
            if policy == "exhaustive":
                continue
            norm = lat / best if np.isfinite(lat) else 2.0
            scores.setdefault(policy, []).append(norm)
    if not scores:
        raise SchedulingError("tournament produced no scorable rows")
    return min(
        scores, key=lambda policy: (float(np.mean(scores[policy])), policy)
    )


def league_table(rows: Sequence[Mapping[str, object]]) -> str:
    """Render tournament rows with the shared reporting formatter."""
    from repro.bench.reporting import format_table

    display = [
        {
            "model": r["model"],
            "policy": r["policy"],
            "latency_ms": r["latency_ms"],
            "overlap_ms": r["overlap_ms"],
            "overlap_gain_pct": r["overlap_gain_pct"],
        }
        for r in rows
    ]
    return format_table(
        display, title="Scheduler tournament (lazy vs. overlapped transfers)"
    )
