"""Native-vs-NumPy kernel scoreboard over the model zoo.

One row per model: best-of-N wall time for the NumPy closure module and
the native (C + ctypes) module on identical feeds, kernel coverage
(how many of the module's kernels actually dispatched native), and the
observed ULP drift against the two-class policy budget.  The CI
``native-smoke`` job and ``benchmarks/bench_native_kernels.py`` both
render these rows and assert on them; keeping the measurement here means
the CLI, the bench suite, and CI can never disagree about methodology.

Timing uses best-of-``repeats`` (min), not mean: on a shared 1-core CI
box the minimum is the stable estimator of the achievable time, and the
speedup ratio of two minima is far less noisy than the ratio of means.
The NumPy and native runs are interleaved round-robin so a transient
stall cannot systematically penalize one side.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.compiler.native import NativeOptions, graph_ulp_budget, max_ulp_diff
from repro.compiler.pipeline import Compiler
from repro.ir.interpreter import make_inputs

__all__ = ["SCOREBOARD_MODELS", "native_scoreboard"]

#: CNN (vgg, resnet, squeezenet, mobilenet) + FFN (wide_deep, mtdnn) +
#: RNN-ish (siamese) coverage — the full tiny zoo.
SCOREBOARD_MODELS = (
    "wide_deep",
    "siamese",
    "mtdnn",
    "resnet",
    "vgg",
    "squeezenet",
    "mobilenet",
)


def _best_of_interleaved(fns: Sequence, repeats: int) -> list[float]:
    """Best-of-``repeats`` per callable, visiting them round-robin so a
    transient CI stall degrades one sample of each contender rather
    than every sample of one of them."""
    for fn in fns:  # warm: ctypes setup / NumPy allocator warmup
        fn()
    best = [float("inf")] * len(fns)
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            t0 = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - t0)
    return best


def native_scoreboard(
    models: Sequence[str] = SCOREBOARD_MODELS,
    repeats: int = 5,
    tiny: bool = True,
    native: NativeOptions | None = None,
    seed: int = 0,
) -> list[dict]:
    """Measure every model both ways and return table-ready rows.

    Pass a :class:`NativeOptions` with a dedicated cache to make the
    compile/hit counters attributable to this run (the warm-cache
    zero-compile assertion in the bench does exactly that).
    """
    from repro.models import build_model

    native = native or NativeOptions(autotune=True)
    numpy_compiler = Compiler()
    native_compiler = Compiler(backend="native", native=native)

    rows: list[dict] = []
    for name in models:
        graph = build_model(name, tiny=tiny)
        feeds = make_inputs(graph, seed=seed)
        mod_np = numpy_compiler.compile_cpu(graph)
        mod_nat = native_compiler.compile_cpu(graph)

        out_np = mod_np.run(feeds)
        out_nat = mod_nat.run(feeds)
        drift = max(
            (max_ulp_diff(a, b) for a, b in zip(out_np, out_nat)), default=0.0
        )
        budget = graph_ulp_budget(mod_nat.graph)

        t_np, t_nat = _best_of_interleaved(
            [lambda: mod_np.run(feeds), lambda: mod_nat.run(feeds)], repeats
        )
        n_native = sum(1 for k in mod_nat.kernels if k.backend == "native")
        rows.append(
            {
                "model": name,
                "kernels": f"{n_native}/{len(mod_nat.kernels)}",
                "numpy_ms": t_np * 1e3,
                "native_ms": t_nat * 1e3,
                "speedup": t_np / t_nat if t_nat > 0 else float("inf"),
                "max_ulp": drift,
                "ulp_budget": float(budget),
            }
        )
    return rows
