"""Canonical workload configurations for the paper's evaluation (§VI-A).

Table I of the paper lists the model parameters of Wide-and-Deep, Siamese,
and MT-DNN; the exact numbers are not reproduced in the text, so the
defaults here are the representative configurations calibrated in
DESIGN.md.  The sweep lists mirror the model-variation experiments
(Figs. 14-17).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.graph import Graph
from repro.models import (
    MTDNNConfig,
    ResNetConfig,
    SiameseConfig,
    WideDeepConfig,
    build_model,
)

__all__ = [
    "EVAL_MODELS",
    "RNN_LAYER_SWEEP",
    "CNN_DEPTH_SWEEP",
    "FFN_DEPTH_SWEEP",
    "BATCH_SIZE_SWEEP",
    "Workload",
    "evaluation_workloads",
    "table1_rows",
]

EVAL_MODELS = ("wide_deep", "siamese", "mtdnn")

# Fig. 14: stacked RNN layers in Wide&Deep.
RNN_LAYER_SWEEP = (1, 2, 4, 8)
# Fig. 15: ResNet encoder depth in Wide&Deep.
CNN_DEPTH_SWEEP = (18, 34, 50, 101)
# Fig. 16: hidden layers in the Deep (FFN) component.
FFN_DEPTH_SWEEP = (1, 2, 4, 8)
# Fig. 17: frozen batch sizes (TVM-style static batch).
BATCH_SIZE_SWEEP = (2, 4, 8, 16, 32)


@dataclass(frozen=True)
class Workload:
    """A named evaluation workload: model graph + its configuration."""

    name: str
    graph: Graph
    config: object


def evaluation_workloads() -> list[Workload]:
    """The paper's three complex-structure evaluation models at batch 1."""
    return [
        Workload(name, build_model(name), _default(name)) for name in EVAL_MODELS
    ]


def _default(name: str):
    return {
        "wide_deep": WideDeepConfig(),
        "siamese": SiameseConfig(),
        "mtdnn": MTDNNConfig(),
        "resnet": ResNetConfig(depth=50),
    }[name]


def table1_rows() -> list[dict[str, object]]:
    """Table I: the model parameters used in the evaluation."""
    wd = WideDeepConfig()
    si = SiameseConfig()
    mt = MTDNNConfig()
    return [
        {
            "model": "Wide-and-Deep",
            "batch": wd.batch,
            "components": "wide linear + FFN + LSTM + ResNet",
            "seq_len": wd.seq_len,
            "hidden": wd.rnn_hidden,
            "rnn_layers": wd.rnn_layers,
            "cnn_depth": wd.cnn_depth,
            "ffn": f"{wd.ffn_layers}x{wd.ffn_hidden}",
        },
        {
            "model": "Siamese",
            "batch": si.batch,
            "components": "2 shared-weight LSTM towers + distance head",
            "seq_len": si.seq_len,
            "hidden": si.hidden,
            "rnn_layers": si.num_layers,
            "cnn_depth": "-",
            "ffn": "-",
        },
        {
            "model": "MT-DNN",
            "batch": mt.batch,
            "components": f"{mt.num_layers}-layer transformer + {mt.num_tasks} task heads",
            "seq_len": mt.seq_len,
            "hidden": mt.d_model,
            "rnn_layers": "-",
            "cnn_depth": "-",
            "ffn": f"heads {mt.head_hidden}",
        },
    ]
