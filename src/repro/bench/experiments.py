"""Experiment drivers: one function per table/figure of the paper's §VI.

Each function returns plain row dictionaries so the pytest benchmarks, the
examples, and EXPERIMENTS.md generation all share one implementation.
Latencies are reported in milliseconds, matching the paper's figures.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.baselines import TVMLikeBaseline, pytorch_like, tensorflow_like
from repro.bench.workloads import (
    BATCH_SIZE_SWEEP,
    CNN_DEPTH_SWEEP,
    EVAL_MODELS,
    FFN_DEPTH_SWEEP,
    RNN_LAYER_SWEEP,
)
from repro.core import DuetEngine
from repro.core.partition import partition_graph
from repro.core.profiler import CompilerAwareProfiler
from repro.core.scheduler import (
    GreedyCorrectionScheduler,
    LatencyOracle,
    correct_placement,
)
from repro.core.schedulers import (
    exhaustive_placement,
    random_placement,
    round_robin_placement,
)
from repro.devices.machine import Machine, default_machine
from repro.models import WideDeepConfig, build_model
from repro.runtime.simulator import simulate

__all__ = [
    "fig04_timeline",
    "fig05_comm",
    "fig11_end2end",
    "table2_breakdown",
    "fig12_tail",
    "fig13_schedulers",
    "fig14_rnn_layers",
    "fig15_cnn_depth",
    "fig16_ffn_depth",
    "fig17_batch_size",
    "table3_resnet",
]

_MS = 1e3


def _engine(machine: Machine | None) -> DuetEngine:
    return DuetEngine(machine=machine or default_machine(noisy=False))


# ---------------------------------------------------------------------------
# Fig. 4 — execution timeline of Wide&Deep on GPU vs CPU
# ---------------------------------------------------------------------------


def fig04_timeline(machine: Machine | None = None) -> dict[str, list[dict]]:
    """Per-kernel execution timeline of TVM-style single-device runs.

    Returns segments per device: the GPU timeline shows the RNN dominating,
    the CPU timeline shows the CNN dominating — the paper's motivation for
    co-execution.
    """
    machine = machine or default_machine(noisy=False)
    graph = build_model("wide_deep")
    out: dict[str, list[dict]] = {}
    for dev in ("cpu", "gpu"):
        baseline = TVMLikeBaseline(dev, machine)
        result = baseline.run(baseline.compile(graph))
        segments = []
        for rec in result.tasks[0].kernels:
            segments.append(
                {
                    "kernel": rec.name,
                    "start_ms": rec.start * _MS,
                    "end_ms": rec.finish * _MS,
                    "duration_ms": rec.duration * _MS,
                }
            )
        out[dev] = segments
    return out


# ---------------------------------------------------------------------------
# Fig. 5 — CPU<->GPU communication cost vs message size
# ---------------------------------------------------------------------------


def fig05_comm(
    machine: Machine | None = None,
    sizes: Sequence[int] | None = None,
) -> list[dict]:
    """Bulk-transfer latency and effective bandwidth per message size."""
    machine = machine or default_machine(noisy=False)
    link = machine.interconnect
    if sizes is None:
        sizes = [2**k for k in range(10, 29)]  # 1 KiB .. 256 MiB
    rows = []
    for size in sizes:
        t = link.transfer_time(size)
        rows.append(
            {
                "bytes": size,
                "latency_ms": t * _MS,
                "bandwidth_gbps": link.bandwidth_at(size) / 1e9,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Fig. 11 — end-to-end latency across frameworks
# ---------------------------------------------------------------------------


def fig11_end2end(
    machine: Machine | None = None,
    models: Sequence[str] = EVAL_MODELS,
) -> list[dict]:
    """Mean latency of PyTorch/TF/TVM (CPU+GPU) and DUET per model."""
    machine = machine or default_machine(noisy=False)
    engine = _engine(machine)
    rows = []
    for name in models:
        graph = build_model(name)
        opt = engine.optimize(graph)
        systems = {
            "PyTorch-CPU": pytorch_like("cpu", machine).latency(graph),
            "PyTorch-GPU": pytorch_like("gpu", machine).latency(graph),
            "TensorFlow-CPU": tensorflow_like("cpu", machine).latency(graph),
            "TensorFlow-GPU": tensorflow_like("gpu", machine).latency(graph),
            "TVM-CPU": opt.single_device_latency["cpu"],
            "TVM-GPU": opt.single_device_latency["gpu"],
            "DUET": opt.latency,
        }
        for system, latency in systems.items():
            rows.append(
                {
                    "model": name,
                    "system": system,
                    "latency_ms": latency * _MS,
                    "speedup_vs_duet": latency / opt.latency,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Table II — per-subgraph cost breakdown and placement decisions
# ---------------------------------------------------------------------------


def table2_breakdown(
    machine: Machine | None = None,
    models: Sequence[str] = EVAL_MODELS,
) -> list[dict]:
    """Profiled CPU/GPU cost and final device of every subgraph."""
    machine = machine or default_machine(noisy=False)
    engine = _engine(machine)
    rows = []
    for name in models:
        opt = engine.optimize(build_model(name))
        for sg in opt.partition.subgraphs:
            prof = opt.profiles[sg.id]
            rows.append(
                {
                    "model": name,
                    "subgraph": sg.id,
                    "ops": len(sg.node_ids),
                    "cpu_ms": prof.time_on("cpu") * _MS,
                    "gpu_ms": prof.time_on("gpu") * _MS,
                    "placement": opt.placement[sg.id],
                    "bytes_out": prof.bytes_out,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Fig. 12 — tail latency (P50/P99/P99.9), TVM-GPU vs DUET
# ---------------------------------------------------------------------------


def fig12_tail(
    machine: Machine | None = None,
    models: Sequence[str] = EVAL_MODELS,
    n_runs: int = 5000,
) -> list[dict]:
    """Sampled percentile latencies of TVM-GPU and DUET (noisy machine)."""
    machine = machine or default_machine(noisy=True)
    engine = DuetEngine(machine=machine)
    rows = []
    for name in models:
        graph = build_model(name)
        opt = engine.optimize(graph)
        duet_stats = engine.latency_stats(opt, n_runs=n_runs)
        gpu_stats = TVMLikeBaseline("gpu", machine).latency_stats(
            graph, n_runs=n_runs
        )
        for system, stats in (("TVM-GPU", gpu_stats), ("DUET", duet_stats)):
            rows.append(
                {
                    "model": name,
                    "system": system,
                    "p50_ms": stats.p50_ms,
                    "p99_ms": stats.p99_ms,
                    "p999_ms": stats.p999_ms,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Fig. 13 — scheduling algorithm comparison
# ---------------------------------------------------------------------------


def fig13_schedulers(
    machine: Machine | None = None,
    model: str = "wide_deep",
    n_random: int = 20,
    seed: int = 0,
) -> list[dict]:
    """Latency of Random / Round-Robin / Random+Corr / Greedy+Corr / Ideal."""
    machine = machine or default_machine(noisy=False)
    graph = build_model(model)
    partition = partition_graph(graph)
    profiler = CompilerAwareProfiler(machine=machine)
    profiles = profiler.profile_partition(partition)
    scheduler = GreedyCorrectionScheduler(machine=machine)
    rng = np.random.default_rng(seed)

    # One memoized oracle serves every scheme: placements revisited across
    # the random draws, the correction loop, and the greedy run cost one
    # simulation total.
    measure = LatencyOracle(graph, partition, profiles, machine)

    # Random: average over draws (a single draw is arbitrary).
    random_lat = float(
        np.mean(
            [measure(random_placement(partition, rng)) for _ in range(n_random)]
        )
    )
    rr_lat = measure(round_robin_placement(partition))

    rand_init = random_placement(partition, np.random.default_rng(seed + 1))
    corrected, _, _ = correct_placement(dict(rand_init), partition, measure)
    rand_corr_lat = measure(corrected)

    greedy = scheduler.schedule(graph, partition, profiles, oracle=measure)
    ideal_placement, ideal_lat = exhaustive_placement(
        graph, partition, profiles, machine
    )
    return [
        {"scheme": "Random", "latency_ms": random_lat * _MS},
        {"scheme": "Round-Robin", "latency_ms": rr_lat * _MS},
        {"scheme": "Random+Correction", "latency_ms": rand_corr_lat * _MS},
        {"scheme": "Greedy+Correction", "latency_ms": greedy.latency * _MS},
        {"scheme": "Ideal", "latency_ms": ideal_lat * _MS},
    ]


# ---------------------------------------------------------------------------
# Figs. 14-17 — model variations
# ---------------------------------------------------------------------------


def _sweep_wide_deep(
    machine: Machine, configs: Mapping[object, WideDeepConfig]
) -> list[dict]:
    engine = _engine(machine)
    rows = []
    for x, cfg in configs.items():
        opt = engine.optimize(build_model("wide_deep", config=cfg))
        rows.append(
            {
                "x": x,
                "tvm_cpu_ms": opt.single_device_latency["cpu"] * _MS,
                "tvm_gpu_ms": opt.single_device_latency["gpu"] * _MS,
                "duet_ms": opt.latency * _MS,
                "speedup_vs_gpu": opt.single_device_latency["gpu"] / opt.latency,
                "speedup_vs_cpu": opt.single_device_latency["cpu"] / opt.latency,
                "fallback": opt.fallback_device,
            }
        )
    return rows


def fig14_rnn_layers(
    machine: Machine | None = None,
    layers: Sequence[int] = RNN_LAYER_SWEEP,
) -> list[dict]:
    """Vary the stacked-LSTM depth of Wide&Deep (1/2/4/8)."""
    machine = machine or default_machine(noisy=False)
    cfgs = {n: WideDeepConfig().with_rnn_layers(n) for n in layers}
    return _sweep_wide_deep(machine, cfgs)


def fig15_cnn_depth(
    machine: Machine | None = None,
    depths: Sequence[int] = CNN_DEPTH_SWEEP,
) -> list[dict]:
    """Vary the ResNet encoder depth of Wide&Deep (18/34/50/101)."""
    machine = machine or default_machine(noisy=False)
    cfgs = {d: WideDeepConfig().with_cnn_depth(d) for d in depths}
    return _sweep_wide_deep(machine, cfgs)


def fig16_ffn_depth(
    machine: Machine | None = None,
    depths: Sequence[int] = FFN_DEPTH_SWEEP,
) -> list[dict]:
    """Vary the FFN hidden-layer count of Wide&Deep."""
    machine = machine or default_machine(noisy=False)
    cfgs = {n: WideDeepConfig().with_ffn_layers(n) for n in depths}
    return _sweep_wide_deep(machine, cfgs)


def fig17_batch_size(
    machine: Machine | None = None,
    batches: Sequence[int] = BATCH_SIZE_SWEEP,
) -> list[dict]:
    """Vary the frozen batch size of Wide&Deep (2..32)."""
    machine = machine or default_machine(noisy=False)
    cfgs = {b: WideDeepConfig().with_batch(b) for b in batches}
    return _sweep_wide_deep(machine, cfgs)


# ---------------------------------------------------------------------------
# Table III — traditional sequential model (ResNet) and the fallback
# ---------------------------------------------------------------------------


def table3_resnet(
    machine: Machine | None = None,
    models: Sequence[str] = ("resnet", "vgg", "squeezenet", "mobilenet"),
) -> list[dict]:
    """End-to-end latency on traditional sequential models.

    The paper evaluates ResNet; VGG and SqueezeNet (both name-checked in
    §III-A as models Operators-in-Sequence already serves well) extend the
    fallback check — SqueezeNet's fire modules even contain real branch
    parallelism, but both branches prefer the GPU, so DUET still falls
    back.
    """
    machine = machine or default_machine(noisy=False)
    engine = _engine(machine)
    rows = []
    for name in models:
        graph = build_model(name)
        opt = engine.optimize(graph)
        systems = {
            "PyTorch-CPU": pytorch_like("cpu", machine).latency(graph),
            "PyTorch-GPU": pytorch_like("gpu", machine).latency(graph),
            "TVM-CPU": opt.single_device_latency["cpu"],
            "TVM-GPU": opt.single_device_latency["gpu"],
            "DUET": opt.latency,
        }
        for system, latency in systems.items():
            rows.append(
                {
                    "model": name,
                    "system": system,
                    "latency_ms": latency * _MS,
                    "fallback": opt.fallback_device if system == "DUET" else "",
                }
            )
    return rows
