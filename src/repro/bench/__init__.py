"""Benchmark harness: experiment drivers, workloads, and reporting."""

from repro.bench.ablations import (
    ablation_correction,
    ablation_granularity,
    ablation_profiling,
    build_comm_heavy_model,
    build_fusion_sensitive_model,
)
from repro.bench.experiments import (
    fig04_timeline,
    fig05_comm,
    fig11_end2end,
    fig12_tail,
    fig13_schedulers,
    fig14_rnn_layers,
    fig15_cnn_depth,
    fig16_ffn_depth,
    fig17_batch_size,
    table2_breakdown,
    table3_resnet,
)
from repro.bench.loadgen import (
    LoadResult,
    closed_loop_burst,
    elementwise_chain,
    run_closed_loop,
)
from repro.bench.reporting import (
    format_bars,
    format_hetero_timeline,
    format_table,
    format_timeline,
)
from repro.bench.workloads import (
    BATCH_SIZE_SWEEP,
    CNN_DEPTH_SWEEP,
    EVAL_MODELS,
    FFN_DEPTH_SWEEP,
    RNN_LAYER_SWEEP,
    Workload,
    evaluation_workloads,
    table1_rows,
)

__all__ = [
    "BATCH_SIZE_SWEEP",
    "ablation_correction",
    "ablation_granularity",
    "ablation_profiling",
    "build_comm_heavy_model",
    "build_fusion_sensitive_model",
    "CNN_DEPTH_SWEEP",
    "EVAL_MODELS",
    "FFN_DEPTH_SWEEP",
    "LoadResult",
    "RNN_LAYER_SWEEP",
    "Workload",
    "closed_loop_burst",
    "elementwise_chain",
    "evaluation_workloads",
    "run_closed_loop",
    "fig04_timeline",
    "fig05_comm",
    "fig11_end2end",
    "fig12_tail",
    "fig13_schedulers",
    "fig14_rnn_layers",
    "fig15_cnn_depth",
    "fig16_ffn_depth",
    "fig17_batch_size",
    "format_bars",
    "format_hetero_timeline",
    "format_table",
    "format_timeline",
    "table1_rows",
    "table2_breakdown",
    "table3_resnet",
]
