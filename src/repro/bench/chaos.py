"""Serving-level chaos harness: scripted faults against a live frontend.

The resilience layer in :mod:`repro.serving` makes promises — every
admitted request reaches exactly one terminal state, successful responses
stay bit-identical to a solo :class:`~repro.runtime.session.EngineSession`,
the lane keeps serving through a device loss, throughput recovers after
the device returns.  This module *measures* those promises instead of
asserting them in unit-test isolation: :func:`run_chaos_serve` drives
closed-loop load from real client threads against a fault-injected
:class:`~repro.serving.ServingFrontend` while a scripted schedule walks
through fault regimes::

    baseline -> transient kernel faults -> latency stalls
             -> device outage -> recovery (revive + restore)

Each phase gets its own scoreboard (availability, throughput, p99) and
the final :class:`ChaosReport` checks the invariants across the whole
run.  ``python -m repro chaos-serve`` renders the report; the CI smoke
job runs the same schedule at small scale and fails on any invariant
violation.

The injector is a :class:`~repro.runtime.faults.ScriptedChaosInjector`
shared by the whole worker pool, so the harness exercises exactly the
concurrency the frontend ships with — which also means *which* request
observes fault *i* is timing-dependent by design; the invariants must
hold under every interleaving, and each run probes one.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.bench.reporting import format_table
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ExecutionError,
    LoadShedError,
    QueueFullError,
    ReproError,
)

__all__ = [
    "ChaosPhase",
    "PhaseStats",
    "ChaosReport",
    "default_chaos_schedule",
    "run_chaos_serve",
]

#: Terminal outcomes a request can reach, in reporting order.
OUTCOMES = ("ok", "error", "shed", "rejected", "expired", "mismatch")


@dataclass(frozen=True)
class ChaosPhase:
    """One step of the scripted fault schedule.

    Attributes:
        name: phase label (``baseline``/``transient``/``stall``/
            ``outage``/``recovery`` in the default schedule).
        duration_s: how long load runs under this regime.
        mode: injector mode for the phase (``None`` = healthy,
            ``"transient"``, ``"stall"``).
        rate: every ``rate``-th task attempt misbehaves in
            transient/stall modes.
        stall_s: extra seconds per stalled attempt.
        lose_device: device to kill at phase entry (``None`` = none).
        revive_device: device to revive — and tell the frontend to
            restore — at phase entry.
    """

    name: str
    duration_s: float
    mode: str | None = None
    rate: int = 3
    stall_s: float = 0.0
    lose_device: str | None = None
    revive_device: str | None = None

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ExecutionError(
                f"phase {self.name!r} duration must be > 0, got "
                f"{self.duration_s}"
            )


def default_chaos_schedule(
    phase_s: float = 1.0, device: str = "gpu"
) -> tuple[ChaosPhase, ...]:
    """The canonical five-phase schedule from the resilience story."""
    return (
        ChaosPhase("baseline", phase_s),
        ChaosPhase("transient", phase_s, mode="transient", rate=4),
        ChaosPhase("stall", phase_s, mode="stall", rate=3, stall_s=2e-3),
        ChaosPhase("outage", phase_s, lose_device=device),
        ChaosPhase("recovery", phase_s, revive_device=device),
    )


@dataclass
class PhaseStats:
    """Scoreboard of one phase (requests attributed by submit time)."""

    name: str
    duration_s: float
    counts: dict[str, int] = field(
        default_factory=lambda: dict.fromkeys(OUTCOMES, 0)
    )
    latencies_s: list[float] = field(default_factory=list)

    @property
    def submitted(self) -> int:
        return sum(self.counts.values())

    @property
    def availability(self) -> float:
        """Fraction of attempted requests that succeeded in-deadline."""
        total = self.submitted
        return self.counts["ok"] / total if total else 0.0

    @property
    def throughput_rps(self) -> float:
        return self.counts["ok"] / self.duration_s if self.duration_s else 0.0

    def p99_ms(self) -> float:
        """p99 of successful-request client latency, in milliseconds."""
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(np.array(self.latencies_s), 99)) * 1e3


@dataclass
class ChaosReport:
    """Everything :func:`run_chaos_serve` measured, invariants included.

    Attributes:
        phases: per-phase scoreboards, in schedule order.
        recovery_ratio: recovery-phase throughput over baseline.
        hung_futures: admitted futures left unresolved after close —
            must be 0.
        mismatches: successful responses that were not bit-identical to
            the solo reference session — must be 0.
        unaccounted: requests whose client observed no terminal outcome.
        recovery_threshold: required ``recovery_ratio`` floor.
        metrics_text: the frontend's final metrics exposition.
    """

    phases: list[PhaseStats]
    recovery_ratio: float
    hung_futures: int
    mismatches: int
    unaccounted: int
    recovery_threshold: float
    metrics_text: str = ""

    def phase(self, name: str) -> PhaseStats:
        for stats in self.phases:
            if stats.name == name:
                return stats
        raise ExecutionError(f"no phase named {name!r}")

    def invariant_failures(self) -> list[str]:
        """Every violated resilience invariant, human-readable."""
        failures = []
        if self.hung_futures:
            failures.append(
                f"{self.hung_futures} admitted future(s) never reached a "
                "terminal state"
            )
        if self.unaccounted:
            failures.append(
                f"{self.unaccounted} request(s) observed no terminal outcome"
            )
        if self.mismatches:
            failures.append(
                f"{self.mismatches} successful response(s) were not "
                "bit-identical to the solo session"
            )
        try:
            outage = self.phase("outage")
        except ExecutionError:
            outage = None
        if outage is not None and outage.counts["ok"] == 0:
            failures.append(
                "availability hit zero during the outage phase "
                f"(outcomes: {outage.counts})"
            )
        if self.recovery_ratio < self.recovery_threshold:
            failures.append(
                f"post-recovery throughput recovered to only "
                f"{self.recovery_ratio:.2f}x of baseline "
                f"(required >= {self.recovery_threshold:.2f}x)"
            )
        return failures

    @property
    def ok(self) -> bool:
        return not self.invariant_failures()

    def render(self) -> str:
        """The per-phase table plus the invariant verdict."""
        rows = []
        for stats in self.phases:
            rows.append(
                {
                    "phase": stats.name,
                    "submitted": stats.submitted,
                    "ok": stats.counts["ok"],
                    "error": stats.counts["error"],
                    "shed": stats.counts["shed"],
                    "rejected": stats.counts["rejected"],
                    "expired": stats.counts["expired"],
                    "avail_%": round(stats.availability * 100, 1),
                    "rps": round(stats.throughput_rps, 1),
                    "p99_ms": round(stats.p99_ms(), 3),
                }
            )
        lines = [format_table(rows, title="chaos-serve phase scoreboard")]
        lines.append(
            f"recovery throughput: {self.recovery_ratio:.2f}x of baseline "
            f"(required >= {self.recovery_threshold:.2f}x)"
        )
        failures = self.invariant_failures()
        if failures:
            lines.append("INVARIANT FAILURES:")
            lines.extend(f"  - {f}" for f in failures)
        else:
            lines.append(
                "all resilience invariants held: terminal-state accounting, "
                "bit-identical successes, nonzero outage availability, "
                "recovered throughput"
            )
        return "\n".join(lines)


def _mixed_serving_opt(engine, graph):
    """An optimization whose plan spans both devices.

    The optimizer may legitimately place a tiny model on one device —
    but a chaos run that never touches the device being killed proves
    nothing, so force an alternating placement (the differential oracle
    guarantees any valid placement stays bit-identical).
    """
    from repro.core import CompilerAwareProfiler, partition_graph
    from repro.core.placement import build_hetero_plan

    opt = engine.optimize(graph)
    devices = {task.device for task in opt.plan.tasks}
    if len(devices) > 1:
        return opt
    partition = partition_graph(graph)
    profiles = CompilerAwareProfiler(machine=engine.machine).profile_partition(
        partition
    )
    placement = {
        sg.id: ("cpu" if i % 2 == 0 else "gpu")
        for i, sg in enumerate(partition.subgraphs)
    }
    plan = build_hetero_plan(graph, partition, profiles, placement)
    return dataclasses.replace(opt, plan=plan, fallback_device=None)


def run_chaos_serve(
    schedule: tuple[ChaosPhase, ...] | None = None,
    model: str = "siamese",
    tiny: bool = True,
    concurrency: int = 4,
    pool_size: int = 2,
    deadline_s: float = 2.0,
    corpus_size: int = 8,
    seed: int = 0,
    recovery_threshold: float = 0.8,
    collect_metrics: bool = True,
) -> ChaosReport:
    """Drive the scripted fault schedule against a live serving frontend.

    Builds a both-device plan for ``model``, computes reference outputs
    for a seeded input corpus on a solo (fault-free) session, then runs
    ``concurrency`` closed-loop client threads against a frontend wired
    with retries, a circuit breaker, deadlines, and a shared
    :class:`~repro.runtime.faults.ScriptedChaosInjector` — while the
    main thread walks ``schedule``, flipping fault modes live.

    Every client-observed outcome is attributed to the phase that
    admitted the request; the returned :class:`ChaosReport` carries the
    per-phase scoreboards and the cross-run invariant checks.
    """
    from repro.core import DuetEngine
    from repro.devices import default_machine
    from repro.ir import make_inputs
    from repro.models import build_model
    from repro.runtime.faults import ScriptedChaosInjector
    from repro.runtime.resilient import RetryPolicy
    from repro.runtime.session import EngineSession
    from repro.serving import BreakerConfig, ServingConfig

    schedule = schedule or default_chaos_schedule()
    if corpus_size < 1:
        raise ExecutionError(f"corpus_size must be >= 1, got {corpus_size}")
    if concurrency < 1:
        raise ExecutionError(f"concurrency must be >= 1, got {concurrency}")

    graph = build_model(model, tiny=tiny)
    engine = DuetEngine(machine=default_machine(noisy=False))
    opt = _mixed_serving_opt(engine, graph)

    corpus = [make_inputs(graph, seed=seed + i) for i in range(corpus_size)]
    reference = EngineSession(opt.plan, opt=opt)
    expected = [
        [np.copy(o) for o in reference.run(feeds).outputs] for feeds in corpus
    ]

    injector = ScriptedChaosInjector()
    config = ServingConfig(
        pool_size=pool_size,
        retry_policy=RetryPolicy(max_attempts=4, backoff_base_s=1e-4),
        default_deadline_s=deadline_s,
        breaker=BreakerConfig(failure_threshold=8, recovery_timeout_s=0.05),
        submit_timeout_s=0.25,
        seed=seed,
    )
    frontend = engine.serve(
        {"chaos": opt}, config=config, fault_injectors={"chaos": injector}
    )

    stats = [
        PhaseStats(name=p.name, duration_s=p.duration_s) for p in schedule
    ]
    current_phase = [0]
    stop = threading.Event()
    lock = threading.Lock()
    futures: list = []
    counters = {"mismatches": 0, "unaccounted": 0}

    def client(worker: int) -> None:
        k = worker
        while not stop.is_set():
            feeds = corpus[k % corpus_size]
            want = expected[k % corpus_size]
            k += concurrency
            phase = current_phase[0]
            began = time.perf_counter()
            outcome = None
            try:
                fut = frontend.submit(feeds, model="chaos")
                with lock:
                    futures.append(fut)
                result = fut.result(timeout_s=max(4.0, 4 * deadline_s))
                identical = len(result.outputs) == len(want) and all(
                    np.array_equal(got, ref)
                    for got, ref in zip(result.outputs, want)
                )
                outcome = "ok" if identical else "mismatch"
            except (CircuitOpenError, LoadShedError):
                outcome = "shed"
            except QueueFullError:
                outcome = "rejected"
            except DeadlineExceededError:
                outcome = "expired"
            except ReproError:
                outcome = "error"
            finally:
                elapsed = time.perf_counter() - began
                with lock:
                    if outcome is None:
                        counters["unaccounted"] += 1
                    else:
                        stats[phase].counts[outcome] += 1
                        if outcome == "mismatch":
                            counters["mismatches"] += 1
                        if outcome == "ok":
                            stats[phase].latencies_s.append(elapsed)
            if outcome not in ("ok", "error"):
                # Refusals return instantly; breathe so a closed loop
                # cannot spin-submit thousands of doomed requests.
                time.sleep(1e-3)

    threads = [
        threading.Thread(target=client, args=(i,), name=f"chaos-{i}",
                         daemon=True)
        for i in range(concurrency)
    ]
    for t in threads:
        t.start()
    try:
        for index, phase in enumerate(schedule):
            current_phase[0] = index
            if phase.lose_device is not None:
                injector.set_mode(None)
                injector.lose_device(phase.lose_device)
            elif phase.revive_device is not None:
                injector.set_mode(None)
                injector.revive_device(phase.revive_device)
                frontend.restore_device(phase.revive_device, model="chaos")
            else:
                injector.set_mode(
                    phase.mode, rate=phase.rate, stall_s=phase.stall_s
                )
            time.sleep(phase.duration_s)
    finally:
        stop.set()
        for t in threads:
            t.join()
        frontend.close()

    hung = sum(1 for fut in futures if not fut.done())
    baseline_rps = stats[0].throughput_rps
    recovery_rps = stats[-1].throughput_rps
    ratio = (recovery_rps / baseline_rps) if baseline_rps > 0 else 0.0
    return ChaosReport(
        phases=stats,
        recovery_ratio=ratio,
        hung_futures=hung,
        mismatches=counters["mismatches"],
        unaccounted=counters["unaccounted"],
        recovery_threshold=recovery_threshold,
        metrics_text=frontend.render_metrics() if collect_metrics else "",
    )
